// Equi-width histogram over an integer domain. The online advisor records
// update-key histograms with it to locate "hot" row regions (paper §3.2,
// horizontal partitioning heuristic).
#ifndef HSDB_COMMON_HISTOGRAM_H_
#define HSDB_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hsdb {

/// Contiguous [begin, end) range of histogram buckets plus its share of the
/// total mass; produced by hot-region detection.
struct HistogramRange {
  int64_t lo;           // inclusive domain lower bound
  int64_t hi;           // exclusive domain upper bound
  double mass_fraction; // fraction of all recorded observations inside
  double width_fraction;// fraction of the domain covered
};

/// Fixed-bucket equi-width histogram over [domain_lo, domain_hi).
/// Observations outside the domain are clamped into the edge buckets so that
/// a drifting key domain still registers at the boundary.
class EquiWidthHistogram {
 public:
  EquiWidthHistogram() : EquiWidthHistogram(0, 1, 1) {}
  EquiWidthHistogram(int64_t domain_lo, int64_t domain_hi, size_t buckets);

  void Add(int64_t value, uint64_t weight = 1);

  size_t num_buckets() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  int64_t domain_lo() const { return lo_; }
  int64_t domain_hi() const { return hi_; }

  /// Lower domain bound of bucket `i`.
  int64_t BucketLo(size_t i) const;
  /// Upper domain bound of bucket `i` (exclusive).
  int64_t BucketHi(size_t i) const;

  /// Returns maximal contiguous runs of buckets whose density exceeds
  /// `density_factor` times the average density, each run reported with its
  /// mass and width fractions. Used to find update hot spots.
  std::vector<HistogramRange> DenseRanges(double density_factor) const;

  /// Returns the smallest prefix/suffix-trimmed contiguous range that covers
  /// at least `mass` (in [0,1]) of all observations — the advisor's estimate
  /// of "which fraction of the table is actually touched".
  HistogramRange CoveringRange(double mass) const;

  void Reset();

 private:
  int64_t lo_;
  int64_t hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace hsdb

#endif  // HSDB_COMMON_HISTOGRAM_H_
