// Wall-clock timing utilities for calibration probes and benchmarks.
#ifndef HSDB_COMMON_STOPWATCH_H_
#define HSDB_COMMON_STOPWATCH_H_

#include <algorithm>
#include <chrono>
#include <vector>

namespace hsdb {

/// Steady-clock stopwatch measuring elapsed milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction/Restart.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` `repeats` times and returns the median elapsed milliseconds.
/// The median is robust against one-off scheduling hiccups, which matters for
/// calibration probes.
template <typename Fn>
double MedianTimeMs(Fn&& fn, int repeats = 3) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int i = 0; i < repeats; ++i) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.ElapsedMs());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace hsdb

#endif  // HSDB_COMMON_STOPWATCH_H_
