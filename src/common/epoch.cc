#include "common/epoch.h"

#include <utility>

namespace hsdb {

uint64_t EpochManager::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t e = epoch_;
  PinEntry& entry = pins_[e];
  if (entry.count == 0) entry.first_pin = std::chrono::steady_clock::now();
  ++entry.count;
  return e;
}

void EpochManager::Unpin(uint64_t epoch) {
  std::deque<std::function<void()>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pins_.find(epoch);
    HSDB_CHECK(it != pins_.end());
    if (--it->second.count == 0) pins_.erase(it);
    CollectLocked(&ready);
  }
  for (auto& deleter : ready) deleter();
}

void EpochManager::Retire(std::function<void()> deleter) {
  if (!deleter) return;
  std::deque<std::function<void()>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.push_back(Retired{epoch_, std::move(deleter)});
    CollectLocked(&ready);
  }
  for (auto& d : ready) d();
}

void EpochManager::Advance() {
  std::deque<std::function<void()>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;
    CollectLocked(&ready);
  }
  for (auto& deleter : ready) deleter();
}

uint64_t EpochManager::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t EpochManager::pinned_readers() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [epoch, entry] : pins_) total += entry.count;
  return total;
}

double EpochManager::OldestPinAgeMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pins_.empty()) return 0.0;
  const auto age = std::chrono::steady_clock::now() - pins_.begin()->second.first_pin;
  return std::chrono::duration<double, std::milli>(age).count();
}

size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

void EpochManager::DrainAll() {
  std::deque<Retired> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.swap(retired_);
  }
  for (auto& r : all) r.deleter();
}

void EpochManager::CollectLocked(std::deque<std::function<void()>>* out) {
  // The oldest live pin bounds what can go: an entry retired at epoch E is
  // unreachable once every reader pinned at <= E has drained. Readers that
  // pinned *after* the publishing swap cannot reach the old pointer even if
  // their pin epoch equals E; treating them as potential readers is merely
  // conservative.
  const uint64_t min_pinned =
      pins_.empty() ? UINT64_MAX : pins_.begin()->first;
  while (!retired_.empty() && retired_.front().epoch < min_pinned) {
    out->push_back(std::move(retired_.front().deleter));
    retired_.pop_front();
  }
}

}  // namespace hsdb
