// Project-wide assertion and convenience macros.
#ifndef HSDB_COMMON_MACROS_H_
#define HSDB_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Fatal invariant check, enabled in all build types. Database invariants are
// cheap to test relative to query work, so we keep them on in Release.
#define HSDB_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "HSDB_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define HSDB_CHECK_MSG(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "HSDB_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Debug-only check.
#ifndef NDEBUG
#define HSDB_DCHECK(cond) HSDB_CHECK(cond)
#else
#define HSDB_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#define HSDB_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;           \
  TypeName& operator=(const TypeName&) = delete

#endif  // HSDB_COMMON_MACROS_H_
