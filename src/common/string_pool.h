// Append-only deduplicating string pool. The row store represents VARCHAR
// cells as 4-byte references into a per-table pool.
#ifndef HSDB_COMMON_STRING_POOL_H_
#define HSDB_COMMON_STRING_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"

namespace hsdb {

/// Interns strings and hands out dense 32-bit ids. Ids are stable; payloads
/// live in an arena. Identical strings share one id.
class StringPool {
 public:
  using StringId = uint32_t;

  StringPool() = default;
  HSDB_DISALLOW_COPY_AND_ASSIGN(StringPool);
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Interns `s`, returning its id (existing id if already present).
  StringId Intern(std::string_view s);

  /// Payload for `id`; CHECK-fails on out-of-range ids.
  std::string_view Get(StringId id) const;

  size_t size() const { return entries_.size(); }
  /// Approximate heap bytes held by the pool (payloads + tables).
  size_t memory_bytes() const;

 private:
  struct Entry {
    const std::byte* data;
    uint32_t length;
  };

  Arena arena_{64 << 10};
  std::vector<Entry> entries_;
  std::unordered_map<std::string_view, StringId> index_;
};

}  // namespace hsdb

#endif  // HSDB_COMMON_STRING_POOL_H_
