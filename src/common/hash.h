// Small hashing utilities shared by indexes, group-by and sketches.
#ifndef HSDB_COMMON_HASH_H_
#define HSDB_COMMON_HASH_H_

#include <cstdint>
#include <cstring>

namespace hsdb {

/// 64-bit finalizer (splitmix64); good avalanche behaviour for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline size_t HashInt64(int64_t v) {
  return static_cast<size_t>(Mix64(static_cast<uint64_t>(v)));
}

/// Combines a hash into a running seed (boost::hash_combine flavour, 64-bit).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace hsdb

#endif  // HSDB_COMMON_HASH_H_
