#include "common/row.h"

namespace hsdb {

Status ValidateAndCoerceRow(const Schema& schema, Row* row) {
  if (row->size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row->size()) +
        " does not match schema arity " +
        std::to_string(schema.num_columns()));
  }
  for (ColumnId id = 0; id < row->size(); ++id) {
    Value& cell = (*row)[id];
    if (!cell.is_valid()) {
      return Status::InvalidArgument("invalid value for column " +
                                     schema.column(id).name);
    }
    DataType expected = schema.column(id).type;
    if (cell.type() == expected) continue;
    Value coerced;
    if (!cell.CoerceTo(expected, &coerced)) {
      return Status::InvalidArgument(
          "type mismatch for column " + schema.column(id).name + ": got " +
          std::string(DataTypeName(cell.type())) + ", want " +
          std::string(DataTypeName(expected)));
    }
    cell = std::move(coerced);
  }
  return Status::OK();
}

Row ProjectRow(const Row& row, const std::vector<ColumnId>& column_ids) {
  Row out;
  out.reserve(column_ids.size());
  for (ColumnId id : column_ids) {
    out.push_back(row.at(id));
  }
  return out;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace hsdb
