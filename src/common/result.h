// Result<T>: a Status or a value, analogous to arrow::Result / absl::StatusOr.
#ifndef HSDB_COMMON_RESULT_H_
#define HSDB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace hsdb {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    HSDB_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when ok().
  const T& value() const& {
    HSDB_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    HSDB_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    HSDB_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hsdb

/// Evaluates `expr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`. `lhs` may declare a new variable.
#define HSDB_ASSIGN_OR_RETURN(lhs, expr)                       \
  HSDB_ASSIGN_OR_RETURN_IMPL_(                                 \
      HSDB_RESULT_CONCAT_(_hsdb_result_, __LINE__), lhs, expr)

#define HSDB_RESULT_CONCAT_INNER_(a, b) a##b
#define HSDB_RESULT_CONCAT_(a, b) HSDB_RESULT_CONCAT_INNER_(a, b)

#define HSDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // HSDB_COMMON_RESULT_H_
