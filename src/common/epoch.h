// Epoch-based reclamation for reader-visible objects that are replaced by
// atomic pointer swaps (catalog table versions, statistics snapshots).
//
// The protocol (docs/CONCURRENCY.md has the full lifecycle diagram):
//
//   - Every reader *pins* the current epoch before resolving any protected
//     pointer and unpins when it is done with all of them (EpochPin is the
//     RAII form; Database::Execute pins for the whole statement, cost
//     prediction included).
//   - A writer that replaces a protected object publishes the new pointer
//     first, then *retires* the old object at the current epoch, then
//     *advances* the epoch. Retiring transfers ownership to the manager;
//     the object is destroyed later, never inline.
//   - A retired object is reclaimed once no reader holds a pin with epoch
//     <= its retire epoch. Readers that pinned after the swap may still
//     carry the retire epoch (the advance races the pin) — that only delays
//     reclamation by one drain, it never frees early.
//
// The implementation is deliberately simple: one mutex, a pin multiset and
// a retire queue. Pin/Unpin are one lock acquisition each — queries pay
// two uncontended mutex round-trips per statement, which is noise next to
// even a point select. This is not a lock-free EBR; it is the smallest
// correct one.
#ifndef HSDB_COMMON_EPOCH_H_
#define HSDB_COMMON_EPOCH_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/macros.h"

namespace hsdb {

/// Owner of retired object versions. Thread-safe; typically one per
/// Catalog. Destruction runs every remaining deleter (no reader may be
/// pinned at that point — the owning scope has ended).
class EpochManager {
 public:
  EpochManager() = default;
  ~EpochManager() { DrainAll(); }
  HSDB_DISALLOW_COPY_AND_ASSIGN(EpochManager);

  /// Registers a reader at the current epoch and returns that epoch.
  /// Pair every Pin with exactly one Unpin (or use EpochPin).
  uint64_t Pin();

  /// Deregisters a reader pinned at `epoch`; reclaims retired objects whose
  /// last possible reader just drained.
  void Unpin(uint64_t epoch);

  /// Transfers ownership of a replaced object to the manager: `deleter` runs
  /// once no reader pinned at or before the current epoch remains. The
  /// caller must have already unpublished the object (swapped the pointer).
  void Retire(std::function<void()> deleter);

  /// Convenience: retire a uniquely-owned object.
  template <typename T>
  void RetireObject(std::unique_ptr<T> object) {
    if (object == nullptr) return;
    std::shared_ptr<T> shared = std::move(object);
    Retire([shared]() mutable { shared.reset(); });
  }

  /// Moves to the next epoch and reclaims what became unreachable. Called
  /// by the swapping writer after Retire; cheap enough to call per swap.
  void Advance();

  /// Observability accessors (telemetry gauges, tests).
  uint64_t epoch() const;
  size_t pinned_readers() const;
  size_t retired_count() const;

  /// Age in milliseconds of the oldest live pin *entry* — how long the
  /// reader gating reclamation has been holding its epoch. 0 when nothing
  /// is pinned. Approximate upper bound: the timestamp is the first pin of
  /// the oldest epoch entry; a later reader sharing that epoch keeps the
  /// entry (and its original timestamp) alive. Good enough for a gauge that
  /// answers "is a stuck reader blocking reclamation?".
  double OldestPinAgeMs() const;

  /// Runs every pending deleter regardless of pins. Only safe when no
  /// reader can be active (shutdown, single-threaded tests).
  void DrainAll();

 private:
  /// Reclaims every retired entry with no possible reader, assuming mu_ is
  /// held. Deleters run after mu_ is released (a deleter must be free to
  /// touch other locks without ordering against mu_).
  void CollectLocked(std::deque<std::function<void()>>* out);

  mutable std::mutex mu_;
  uint64_t epoch_ = 1;
  struct PinEntry {
    size_t count = 0;
    /// When the entry was created (first pin at this epoch).
    std::chrono::steady_clock::time_point first_pin;
  };
  /// pin epoch -> readers currently holding it.
  std::map<uint64_t, PinEntry> pins_;
  struct Retired {
    uint64_t epoch;
    std::function<void()> deleter;
  };
  std::deque<Retired> retired_;
};

/// RAII reader pin. Movable, not copyable.
class EpochPin {
 public:
  EpochPin() = default;
  explicit EpochPin(EpochManager* manager)
      : manager_(manager), epoch_(manager->Pin()) {}
  ~EpochPin() { Release(); }
  EpochPin(EpochPin&& other) noexcept
      : manager_(other.manager_), epoch_(other.epoch_) {
    other.manager_ = nullptr;
  }
  EpochPin& operator=(EpochPin&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = other.manager_;
      epoch_ = other.epoch_;
      other.manager_ = nullptr;
    }
    return *this;
  }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

  uint64_t epoch() const { return epoch_; }

  void Release() {
    if (manager_ != nullptr) {
      manager_->Unpin(epoch_);
      manager_ = nullptr;
    }
  }

 private:
  EpochManager* manager_ = nullptr;
  uint64_t epoch_ = 0;
};

}  // namespace hsdb

#endif  // HSDB_COMMON_EPOCH_H_
