// QueryResult: the materialized outcome of one query execution.
#ifndef HSDB_EXECUTOR_RESULT_H_
#define HSDB_EXECUTOR_RESULT_H_

#include <cstdint>
#include <vector>

#include "common/row.h"

namespace hsdb {

struct QueryResult {
  /// SELECT: projected result rows. Grouped aggregation: one row per group
  /// laid out as [group values..., aggregate values...].
  std::vector<Row> rows;

  /// Ungrouped aggregation: one value per aggregate expression, in query
  /// order (COUNT is returned as a double for uniformity).
  std::vector<double> aggregates;

  /// INSERT/UPDATE/DELETE: number of rows written.
  uint64_t affected_rows = 0;

  /// Wall-clock execution time, filled by Database::Execute.
  double elapsed_ms = 0.0;
};

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_RESULT_H_
