// QueryResult: the materialized outcome of one query execution.
#ifndef HSDB_EXECUTOR_RESULT_H_
#define HSDB_EXECUTOR_RESULT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/row.h"
#include "telemetry/trace.h"

namespace hsdb {

struct QueryResult {
  /// SELECT: projected result rows. Grouped aggregation: one row per group
  /// laid out as [group values..., aggregate values...].
  std::vector<Row> rows;

  /// Ungrouped aggregation: one value per aggregate expression, in query
  /// order (COUNT is returned as a double for uniformity).
  std::vector<double> aggregates;

  /// INSERT/UPDATE/DELETE: number of rows written.
  uint64_t affected_rows = 0;

  /// Wall-clock execution time, filled by Database::Execute.
  double elapsed_ms = 0.0;

  /// The estimator's predicted cost for this query under the catalog's
  /// current layouts, filled by Database::Execute when a cost predictor is
  /// installed (the StorageAdvisor wires its cost model in) and telemetry
  /// is enabled. Negative = no prediction available. Together with
  /// elapsed_ms this is one observed-vs-predicted residual sample; the
  /// Database folds it into its CostFeedback accumulator.
  double predicted_cost_ms = -1.0;

  /// Phase-decomposed execution trace (root span "query"), filled by
  /// Database::Execute when telemetry is enabled; null otherwise. Shared so
  /// copying a result stays cheap.
  std::shared_ptr<const telemetry::TraceSpan> trace;
};

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_RESULT_H_
