#include "executor/read_path.h"

#include <algorithm>
#include <unordered_set>

#include "common/thread_pool.h"
#include "storage/scan_dispatch.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace hsdb {
namespace readpath {

std::vector<const PredicateTerm*> TermsForTable(const Predicate& predicate,
                                                int table_index) {
  std::vector<const PredicateTerm*> terms;
  for (const PredicateTerm& term : predicate) {
    if (term.column.table_index == table_index) terms.push_back(&term);
  }
  return terms;
}

Status ValidateTerms(const Schema& schema,
                     const std::vector<const PredicateTerm*>& terms) {
  for (const PredicateTerm* term : terms) {
    if (term->column.column >= schema.num_columns()) {
      return Status::InvalidArgument("predicate column out of range");
    }
    if (!term->range.lo.has_value() && !term->range.hi.has_value()) {
      return Status::InvalidArgument("unbounded predicate term");
    }
  }
  return Status::OK();
}

Bitmap EvaluateOnFragment(const Fragment& frag,
                          const std::vector<const PredicateTerm*>& terms) {
  telemetry::ScopedSpan span("predicate");
  const PhysicalTable& table = *frag.table;
  if (table.store() == StoreType::kRow) {
    const auto& rs = static_cast<const RowTable&>(table);
    for (size_t i = 0; i < terms.size(); ++i) {
      ColumnId fc = frag.FragColumn(terms[i]->column.column);
      if (!rs.HasSortedIndex(fc)) continue;
      Result<Bitmap> seeded = rs.IndexFilter(fc, terms[i]->range);
      if (!seeded.ok()) continue;
      Bitmap bm = std::move(seeded).value();
      for (size_t j = 0; j < terms.size(); ++j) {
        if (j == i) continue;
        table.FilterRange(frag.FragColumn(terms[j]->column.column),
                          terms[j]->range, &bm);
      }
      return bm;
    }
  }
  Bitmap bm = table.live_bitmap();
  for (const PredicateTerm* term : terms) {
    table.FilterRange(frag.FragColumn(term->column.column), term->range, &bm);
  }
  return bm;
}

bool UseParallelScan(const ParallelContext& ctx, const Fragment& frag,
                     const std::vector<const PredicateTerm*>& terms) {
  if (ctx.pool == nullptr) return false;
  if (frag.table->slot_count() <= kMorselRows) return false;
  if (frag.table->store() == StoreType::kRow) {
    const auto& rs = static_cast<const RowTable&>(*frag.table);
    for (const PredicateTerm* term : terms) {
      if (rs.HasSortedIndex(frag.FragColumn(term->column.column))) {
        return false;
      }
    }
  }
  return true;
}

void NoteMorsels(const ParallelContext& ctx, size_t morsels) {
  if (ctx.morsels_total != nullptr) ctx.morsels_total->Increment(morsels);
  if (ctx.queue_depth != nullptr) {
    ctx.queue_depth->Set(
        static_cast<double>(ctx.pool->queue_depth() + morsels));
  }
}

void FilterMorsel(const Fragment& frag,
                  const std::vector<const PredicateTerm*>& terms,
                  size_t begin, size_t end, Bitmap* bm) {
  for (const PredicateTerm* term : terms) {
    frag.table->FilterRangeSlice(frag.FragColumn(term->column.column),
                                 term->range, begin, end, bm);
  }
}

void SelectFromBitmap(const Fragment& cover, const Bitmap& bm,
                      const std::vector<ColumnId>& select_columns,
                      size_t limit, QueryResult* result) {
  bm.ForEachSet([&](size_t rid) {
    if (result->rows.size() >= limit) return;
    Row row;
    row.reserve(select_columns.size());
    for (ColumnId col : select_columns) {
      row.push_back(cover.table->GetValue(rid, cover.FragColumn(col)));
    }
    result->rows.push_back(std::move(row));
  });
}

void ParallelSelectCover(const ParallelContext& ctx, const Fragment& cover,
                         const std::vector<const PredicateTerm*>& terms,
                         const std::vector<ColumnId>& select_columns,
                         size_t limit, const Bitmap* prefiltered,
                         QueryResult* result) {
  telemetry::ScopedSpan par_span("scan_parallel");
  const size_t n = cover.table->slot_count();
  const size_t morsels = MorselCount(n);
  NoteMorsels(ctx, morsels);
  Bitmap local;
  const Bitmap* bm = prefiltered;
  if (bm == nullptr) {
    local = cover.table->live_bitmap();
    bm = &local;
  }
  std::vector<std::vector<Row>> batches(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    const size_t begin = m * kMorselRows;
    const size_t end = std::min(begin + kMorselRows, n);
    if (prefiltered == nullptr) FilterMorsel(cover, terms, begin, end, &local);
    std::vector<Row>& rows = batches[m];
    bm->ForEachSetInRange(begin, end, [&](size_t rid) {
      if (rows.size() >= limit) return;  // no morsel needs more than `limit`
      Row row;
      row.reserve(select_columns.size());
      for (ColumnId col : select_columns) {
        row.push_back(cover.table->GetValue(rid, cover.FragColumn(col)));
      }
      rows.push_back(std::move(row));
    });
  });
  for (std::vector<Row>& rows : batches) {
    for (Row& row : rows) {
      if (result->rows.size() >= limit) return;
      result->rows.push_back(std::move(row));
    }
  }
}

void AggregateFromBitmap(const Fragment& cover, const Bitmap& bm,
                         const AggregationQuery& q, bool grouped,
                         std::vector<AggState>* totals, GroupMap* group_map) {
  telemetry::ScopedSpan decode_span("decode");
  if (!grouped) {
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      const AggregateExpr& agg = q.aggregates[i];
      if (agg.fn == AggFn::kCount) {
        (*totals)[i].AddCount(static_cast<double>(bm.Count()));
      } else {
        ForEachNumericIn(*cover.table, cover.FragColumn(agg.column.column),
                         &bm, [&](RowId, double v) { (*totals)[i].Add(v); });
      }
    }
    return;
  }
  bm.ForEachSet([&](size_t rid) {
    GroupKey key;
    key.values.reserve(q.group_by.size());
    for (const ColumnRef& ref : q.group_by) {
      key.values.push_back(
          cover.table->GetValue(rid, cover.FragColumn(ref.column)));
    }
    auto& states =
        group_map
            ->try_emplace(std::move(key),
                          std::vector<AggState>(q.aggregates.size()))
            .first->second;
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      const AggregateExpr& agg = q.aggregates[i];
      if (agg.fn == AggFn::kCount) {
        states[i].AddCount(1.0);
      } else {
        states[i].Add(
            cover.table->GetValue(rid, cover.FragColumn(agg.column.column))
                .AsNumeric());
      }
    }
  });
}

namespace {

/// Per-morsel partial aggregates, merged by the coordinator in morsel order.
struct MorselAgg {
  std::vector<AggState> totals;
  GroupMap groups;
};

}  // namespace

void ParallelAggregateCover(const ParallelContext& ctx, const Fragment& cover,
                            const std::vector<const PredicateTerm*>& terms,
                            const AggregationQuery& q, bool grouped,
                            const Bitmap* prefiltered,
                            std::vector<AggState>* totals,
                            GroupMap* group_map) {
  telemetry::ScopedSpan par_span("scan_parallel");
  const size_t n = cover.table->slot_count();
  const size_t morsels = MorselCount(n);
  NoteMorsels(ctx, morsels);
  Bitmap local;
  const Bitmap* bm = prefiltered;
  if (bm == nullptr) {
    local = cover.table->live_bitmap();
    bm = &local;
  }
  std::vector<MorselAgg> partials(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    const size_t begin = m * kMorselRows;
    const size_t end = std::min(begin + kMorselRows, n);
    if (prefiltered == nullptr) FilterMorsel(cover, terms, begin, end, &local);
    MorselAgg& partial = partials[m];
    if (!grouped) {
      partial.totals.assign(q.aggregates.size(), AggState{});
      for (size_t i = 0; i < q.aggregates.size(); ++i) {
        const AggregateExpr& agg = q.aggregates[i];
        if (agg.fn == AggFn::kCount) {
          partial.totals[i].AddCount(
              static_cast<double>(bm->CountInRange(begin, end)));
        } else {
          ForEachNumericInRange(
              *cover.table, cover.FragColumn(agg.column.column), *bm, begin,
              end, [&](RowId, double v) { partial.totals[i].Add(v); });
        }
      }
      return;
    }
    bm->ForEachSetInRange(begin, end, [&](size_t rid) {
      GroupKey key;
      key.values.reserve(q.group_by.size());
      for (const ColumnRef& ref : q.group_by) {
        key.values.push_back(
            cover.table->GetValue(rid, cover.FragColumn(ref.column)));
      }
      auto& states =
          partial.groups
              .try_emplace(std::move(key),
                           std::vector<AggState>(q.aggregates.size()))
              .first->second;
      for (size_t i = 0; i < q.aggregates.size(); ++i) {
        const AggregateExpr& agg = q.aggregates[i];
        if (agg.fn == AggFn::kCount) {
          states[i].AddCount(1.0);
        } else {
          states[i].Add(
              cover.table->GetValue(rid, cover.FragColumn(agg.column.column))
                  .AsNumeric());
        }
      }
    });
  });
  for (MorselAgg& partial : partials) {
    if (!grouped) {
      for (size_t i = 0; i < partial.totals.size(); ++i) {
        (*totals)[i].Merge(partial.totals[i]);
      }
      continue;
    }
    for (auto& [key, states] : partial.groups) {
      auto& dst =
          group_map
              ->try_emplace(key, std::vector<AggState>(q.aggregates.size()))
              .first->second;
      for (size_t i = 0; i < states.size(); ++i) dst[i].Merge(states[i]);
    }
  }
}

QueryResult FinalizeAggregation(const AggregationQuery& q, bool grouped,
                                const std::vector<AggState>& totals,
                                const GroupMap& group_map) {
  QueryResult result;
  if (!grouped) {
    result.aggregates.reserve(q.aggregates.size());
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      result.aggregates.push_back(totals[i].Finalize(q.aggregates[i].fn));
    }
  } else {
    result.rows.reserve(group_map.size());
    for (const auto& [key, states] : group_map) {
      Row row = key.values;
      for (size_t i = 0; i < q.aggregates.size(); ++i) {
        row.push_back(Value(states[i].Finalize(q.aggregates[i].fn)));
      }
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

const Fragment* CoveringFragment(const RowGroup& group,
                                 const std::vector<ColumnId>& columns) {
  for (const Fragment& frag : group.fragments) {
    if (frag.Covers(columns)) return &frag;
  }
  return nullptr;
}

PrimaryKey PkOfFragmentRow(const Fragment& frag, RowId rid) {
  const Schema& fs = frag.table->schema();
  PrimaryKey pk;
  pk.values.reserve(fs.primary_key().size());
  for (ColumnId c : fs.primary_key()) {
    pk.values.push_back(frag.table->GetValue(rid, c));
  }
  return pk;
}

Result<std::vector<PrimaryKey>> MatchingPksInGroup(
    const RowGroup& group, const std::vector<const PredicateTerm*>& terms) {
  std::vector<PrimaryKey> out;
  if (terms.empty()) {
    const Fragment& lead = group.fragments.front();
    lead.table->live_bitmap().ForEachSet(
        [&](size_t rid) { out.push_back(PkOfFragmentRow(lead, rid)); });
    return out;
  }
  std::vector<ColumnId> cols;
  cols.reserve(terms.size());
  for (const PredicateTerm* term : terms) cols.push_back(term->column.column);
  if (const Fragment* cover = CoveringFragment(group, cols)) {
    Bitmap bm = EvaluateOnFragment(*cover, terms);
    bm.ForEachSet(
        [&](size_t rid) { out.push_back(PkOfFragmentRow(*cover, rid)); });
    return out;
  }
  // Spanning path: assign every term to the first fragment holding its
  // column, evaluate per fragment, intersect the key sets.
  std::vector<const PredicateTerm*> remaining = terms;
  std::vector<std::unordered_set<PrimaryKey, PrimaryKeyHash>> sets;
  for (const Fragment& frag : group.fragments) {
    std::vector<const PredicateTerm*> mine;
    std::vector<const PredicateTerm*> rest;
    for (const PredicateTerm* term : remaining) {
      if (frag.Contains(term->column.column)) {
        mine.push_back(term);
      } else {
        rest.push_back(term);
      }
    }
    remaining = std::move(rest);
    if (mine.empty()) continue;
    Bitmap bm = EvaluateOnFragment(frag, mine);
    std::unordered_set<PrimaryKey, PrimaryKeyHash> keys;
    bm.ForEachSet(
        [&](size_t rid) { keys.insert(PkOfFragmentRow(frag, rid)); });
    sets.push_back(std::move(keys));
  }
  if (!remaining.empty()) {
    return Status::InvalidArgument("predicate column not stored in any "
                                   "fragment");
  }
  // Intersect, starting from the smallest set.
  std::sort(sets.begin(), sets.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  for (const PrimaryKey& pk : sets.front()) {
    bool in_all = true;
    for (size_t s = 1; s < sets.size(); ++s) {
      if (sets[s].find(pk) == sets[s].end()) {
        in_all = false;
        break;
      }
    }
    if (in_all) out.push_back(pk);
  }
  return out;
}

std::vector<ColumnId> UniqueColumns(std::vector<ColumnId> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

}  // namespace readpath
}  // namespace hsdb
