// BatchExecutor: shared-scan execution of a queue of queries (paper §6's
// serving-side complement: many concurrent analytic clients hit the same
// hot tables, so co-running their scans amortizes the decode cost).
//
// ExecuteBatch takes a batch of queries and returns results identical to
// executing them through Database::Execute one at a time in order. Runs of
// consecutive *shareable* reads on the same table — covering SELECTs and
// single-table aggregations — execute as one shared group under a single
// epoch pin and reader lock: every query's selection bitmap is produced by
// one MultiFilterRangeSlice pass per predicate column (one decode of the
// encoded segment fans out to all bitmaps, morsel-parallel when the scan
// pool is installed), then each query materializes through the same
// read-path code the serial executor uses. Everything else — DML, joins,
// point-PK lookups, vertical-split fragments, index-seeded row-store scans,
// validation failures — is delegated to Database::Execute, so the batch
// path never changes semantics, only cost.
//
// Equivalence guarantee (tests/executor/batch_equivalence_test.cc): per
// query the result is bit-identical to serial execution at every thread
// count. The shared pass computes the same selection bitmaps (conjunction
// is order-independent and MultiFilterRangeSlice is bit-identical to the
// per-term filters), and materialization reuses the serial code paths with
// the same morsel structure and partial-merge order.
//
// Concurrency: a shared group holds the table's reader lock exactly like a
// serial read statement (docs/CONCURRENCY.md); delegated queries run after
// the group's lock is released, never under it — re-entering Execute while
// holding the shared lock could deadlock behind a queued writer.
//
// Reported elapsed_ms of a shared query is its amortized share (group wall
// time / group width): that is the cost a co-running client actually pays,
// and it is what the workload recorder should feed the advisor's batch-
// aware cost model. Queries executed on the shared path do not feed the
// per-statement cost-residual stream (no per-query prediction exists for a
// shared scan).
#ifndef HSDB_EXECUTOR_BATCH_EXECUTOR_H_
#define HSDB_EXECUTOR_BATCH_EXECUTOR_H_

#include <string>
#include <vector>

#include "executor/database.h"

namespace hsdb {

class BatchExecutor {
 public:
  /// The database must outlive the batch executor. Install observers and
  /// cost predictors on the database before batch traffic starts.
  explicit BatchExecutor(Database* db);
  HSDB_DISALLOW_COPY_AND_ASSIGN(BatchExecutor);

  /// Executes `queries` in order; result i corresponds to queries[i].
  /// Thread-compatible: concurrent ExecuteBatch calls are safe (the shared
  /// state is the Database, which synchronizes per table), but one batch is
  /// executed by the calling thread.
  ///
  /// `queue_waits_ms` (optional, parallel to `queries`) is each query's
  /// admission-queue wait; it is attributed to slow-query-log records and
  /// the thread-local queue-wait context of delegated executions.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<Query>& queries,
      const std::vector<double>* queue_waits_ms = nullptr);

  /// Table name of a batch-shareable read (covering SELECT / single-table
  /// aggregation), or nullptr when the query must take the per-statement
  /// path. Public because `explain` reports batch-shareability.
  static const std::string* ShareableTable(const Query& query);

 private:
  struct SharedRead;

  /// Executes one same-table group of shareable reads under a single epoch
  /// pin + reader lock. Members that survive preparation have their results
  /// filled (done = true); the rest are left for delegation.
  void ExecuteSharedGroup(const std::string& table_name,
                          std::vector<SharedRead>* members);

  /// Validates one member against the live table version and resolves its
  /// terms, needed columns and per-group covering fragments; marks it for
  /// delegation when any serial-path special case applies.
  void PrepareMember(const LogicalTable& table, SharedRead* m) const;

  /// Materializes one member's result from its shared-pass bitmaps through
  /// the serial read-path code.
  void MaterializeMember(const LogicalTable& table, SharedRead* m) const;

  bool TelemetryOn() const;
  void NotifyShared(const Query& query, const QueryResult& result);

  Database* db_;
  ParallelContext parallel_;
  telemetry::Counter* queries_total_[kNumQueryKinds] = {};
  telemetry::LogHistogram* query_latency_ms_ = nullptr;
  telemetry::Counter* batch_groups_total_ = nullptr;
  telemetry::Counter* batch_shared_queries_total_ = nullptr;
  telemetry::Counter* slow_queries_total_ = nullptr;
  telemetry::LogHistogram* batch_width_ = nullptr;
};

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_BATCH_EXECUTOR_H_
