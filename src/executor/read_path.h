// Shared read-scan machinery: the morsel planner, predicate evaluation and
// result materialization used by both the per-statement Executor and the
// shared-scan BatchExecutor. Everything here is free-standing and
// stateless — callers pass the fragment, the predicate terms and (for the
// parallel paths) the ParallelContext.
//
// The materialization entry points take an optional `prefiltered` bitmap:
// the batch executor computes one selection bitmap per query in a shared
// predicate pass (MultiFilterRangeSlice — one decode of the encoded segment
// fans out to every query) and then materializes each query through the
// exact same code the serial executor uses. Passing the prefiltered bitmap
// through — instead of re-deriving it — keeps batch results bit-identical
// to one-at-a-time execution for every thread count: the morsel structure,
// partial-merge order and row order are the same in both modes.
#ifndef HSDB_EXECUTOR_READ_PATH_H_
#define HSDB_EXECUTOR_READ_PATH_H_

#include <vector>

#include "common/bitmap.h"
#include "executor/aggregate.h"
#include "executor/executor.h"
#include "executor/query.h"
#include "executor/result.h"
#include "storage/logical_table.h"

namespace hsdb {
namespace readpath {

/// Rows per morsel of the parallel scan path. A multiple of 64 so that
/// morsel boundaries fall on bitmap word boundaries: each worker then writes
/// a disjoint word range of the shared selection bitmap, and results are
/// bit-identical for every thread count. Fixed (not derived from the thread
/// count) so that per-morsel work — and therefore merged output — is
/// independent of the degree of parallelism.
constexpr size_t kMorselRows = 16384;
static_assert(kMorselRows % 64 == 0, "morsels must be bitmap-word aligned");

inline size_t MorselCount(size_t n) {
  return (n + kMorselRows - 1) / kMorselRows;
}

/// The query's predicate terms that reference `table_index`.
std::vector<const PredicateTerm*> TermsForTable(const Predicate& predicate,
                                                int table_index);

Status ValidateTerms(const Schema& schema,
                     const std::vector<const PredicateTerm*>& terms);

/// Evaluates a conjunction of terms on one fragment. All term columns must
/// be contained in the fragment. Uses a row-store sorted index to seed the
/// bitmap when one is available for a term's column.
Bitmap EvaluateOnFragment(const Fragment& frag,
                          const std::vector<const PredicateTerm*>& terms);

/// Whether the morsel-parallel scan path applies to this fragment: a pool
/// is installed, the fragment spans more than one morsel, and no row-store
/// sorted index would seed the bitmap (the index path is already
/// sub-linear; morselizing it would only add overhead).
bool UseParallelScan(const ParallelContext& ctx, const Fragment& frag,
                     const std::vector<const PredicateTerm*>& terms);

/// Telemetry for one parallel dispatch: total morsels produced and the
/// worker-queue depth at dispatch time (pending tasks already queued plus
/// this scan's morsels).
void NoteMorsels(const ParallelContext& ctx, size_t morsels);

/// Narrows morsel [begin, end) of the shared bitmap by every term. Each
/// morsel touches only its own bitmap words (begin is 64-aligned), so
/// concurrent calls for disjoint morsels are safe.
void FilterMorsel(const Fragment& frag,
                  const std::vector<const PredicateTerm*>& terms,
                  size_t begin, size_t end, Bitmap* bm);

/// Materializes select rows from an already-evaluated selection bitmap in
/// ascending row-id order, up to `limit` (the serial SELECT tail).
void SelectFromBitmap(const Fragment& cover, const Bitmap& bm,
                      const std::vector<ColumnId>& select_columns,
                      size_t limit, QueryResult* result);

/// Morsel-parallel SELECT over a covering fragment: workers filter and
/// materialize per-morsel row batches; the coordinator concatenates them in
/// morsel order, which makes the output bit-identical to the serial path
/// for every thread count. When `prefiltered` is non-null the per-morsel
/// filter step is skipped and rows come from that bitmap instead (the batch
/// executor's shared predicate pass already narrowed it).
void ParallelSelectCover(const ParallelContext& ctx, const Fragment& cover,
                         const std::vector<const PredicateTerm*>& terms,
                         const std::vector<ColumnId>& select_columns,
                         size_t limit, const Bitmap* prefiltered,
                         QueryResult* result);

/// Sequential aggregation fold over an already-evaluated selection bitmap
/// (the serial single-table aggregation tail).
void AggregateFromBitmap(const Fragment& cover, const Bitmap& bm,
                         const AggregationQuery& q, bool grouped,
                         std::vector<AggState>* totals, GroupMap* group_map);

/// Morsel-parallel aggregation over a covering fragment. Ungrouped: each
/// worker folds its morsel into a private AggState vector. Grouped: each
/// worker builds a private GroupMap. The coordinator merges partials in
/// morsel order, so results are deterministic for every thread count
/// (floating-point sums still differ from the serial evaluation order when
/// values are not exactly representable). `prefiltered` as in
/// ParallelSelectCover.
void ParallelAggregateCover(const ParallelContext& ctx, const Fragment& cover,
                            const std::vector<const PredicateTerm*>& terms,
                            const AggregationQuery& q, bool grouped,
                            const Bitmap* prefiltered,
                            std::vector<AggState>* totals,
                            GroupMap* group_map);

/// Folds accumulated aggregation state into the result shape: one value per
/// aggregate (ungrouped) or one row per group (grouped).
QueryResult FinalizeAggregation(const AggregationQuery& q, bool grouped,
                                const std::vector<AggState>& totals,
                                const GroupMap& group_map);

/// First fragment of the group containing every column, or nullptr.
const Fragment* CoveringFragment(const RowGroup& group,
                                 const std::vector<ColumnId>& columns);

PrimaryKey PkOfFragmentRow(const Fragment& frag, RowId rid);

/// Primary keys of the group's rows matching the predicate. Handles the
/// vertical-split case where no single fragment covers all predicate
/// columns by intersecting per-fragment key sets (the cost of queries that
/// span vertical partitions).
Result<std::vector<PrimaryKey>> MatchingPksInGroup(
    const RowGroup& group, const std::vector<const PredicateTerm*>& terms);

/// Sorted, deduplicated column list.
std::vector<ColumnId> UniqueColumns(std::vector<ColumnId> cols);

}  // namespace readpath
}  // namespace hsdb

#endif  // HSDB_EXECUTOR_READ_PATH_H_
