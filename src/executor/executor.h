// Executor: runs structured queries against the catalog's logical tables,
// transparently handling partitioned layouts — horizontal pieces are
// processed per group and union-combined, vertical pieces are served from a
// covering fragment when possible and PK-joined otherwise (the query
// rewriting of paper §4, at the descriptor level).
#ifndef HSDB_EXECUTOR_EXECUTOR_H_
#define HSDB_EXECUTOR_EXECUTOR_H_

#include "catalog/catalog.h"
#include "executor/query.h"
#include "executor/result.h"

namespace hsdb {

class ThreadPool;
namespace telemetry {
class Counter;
class Gauge;
}  // namespace telemetry

/// Shared-state handles for the morsel-parallel scan path. All members are
/// optional: a null pool keeps every query on the serial path; null
/// telemetry handles skip instrumentation.
struct ParallelContext {
  ThreadPool* pool = nullptr;
  telemetry::Counter* morsels_total = nullptr;
  telemetry::Gauge* queue_depth = nullptr;
};

class Executor {
 public:
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  /// Executes one query. DML maintenance (delta merges) is NOT triggered
  /// here; the Database facade calls AfterStatement at statement boundaries.
  Result<QueryResult> Execute(const Query& query);

  /// Installs the morsel-parallel scan context (Database wires this up when
  /// configured with more than one thread). Thread-compatible: set once
  /// before queries run.
  void set_parallel(const ParallelContext& ctx) { parallel_ = ctx; }

 private:
  Result<QueryResult> ExecuteAggregation(const AggregationQuery& q);
  Result<QueryResult> ExecuteSelect(const SelectQuery& q);
  Result<QueryResult> ExecuteInsert(const InsertQuery& q);
  Result<QueryResult> ExecuteUpdate(const UpdateQuery& q);
  Result<QueryResult> ExecuteDelete(const DeleteQuery& q);

  Result<QueryResult> SingleTableAggregation(const AggregationQuery& q);
  Result<QueryResult> StarJoinAggregation(const AggregationQuery& q);

  Catalog* catalog_;
  ParallelContext parallel_;
};

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_EXECUTOR_H_
