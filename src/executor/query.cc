#include "executor/query.h"

#include <sstream>

namespace hsdb {

std::string_view AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kCount:
      return "COUNT";
  }
  return "UNKNOWN";
}

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kAggregation:
      return "AGGREGATION";
    case QueryKind::kSelect:
      return "SELECT";
    case QueryKind::kInsert:
      return "INSERT";
    case QueryKind::kUpdate:
      return "UPDATE";
    case QueryKind::kDelete:
      return "DELETE";
  }
  return "UNKNOWN";
}

QueryKind KindOf(const Query& query) {
  return static_cast<QueryKind>(query.index());
}

bool IsOlap(const Query& query) {
  return KindOf(query) == QueryKind::kAggregation;
}

std::vector<std::string> TablesOf(const Query& query) {
  return std::visit(
      [](const auto& q) -> std::vector<std::string> {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, AggregationQuery>) {
          return q.tables;
        } else {
          return {q.table};
        }
      },
      query);
}

namespace {

void AppendPredicate(std::ostringstream& os, const Predicate& predicate) {
  if (predicate.empty()) return;
  os << " WHERE ";
  for (size_t i = 0; i < predicate.size(); ++i) {
    if (i > 0) os << " AND ";
    os << "t" << predicate[i].column.table_index << ".c"
       << predicate[i].column.column << " IN "
       << predicate[i].range.ToString();
  }
}

}  // namespace

std::string QueryToString(const Query& query) {
  std::ostringstream os;
  std::visit(
      [&](const auto& q) {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, AggregationQuery>) {
          os << "SELECT ";
          for (size_t i = 0; i < q.aggregates.size(); ++i) {
            if (i > 0) os << ", ";
            os << AggFnName(q.aggregates[i].fn) << "(t"
               << q.aggregates[i].column.table_index << ".c"
               << q.aggregates[i].column.column << ")";
          }
          os << " FROM ";
          for (size_t i = 0; i < q.tables.size(); ++i) {
            if (i > 0) os << " JOIN ";
            os << q.tables[i];
          }
          for (const JoinEdge& e : q.joins) {
            os << " ON t" << e.left_table << ".c" << e.left_column << "=t"
               << e.right_table << ".c" << e.right_column;
          }
          AppendPredicate(os, q.predicate);
          if (!q.group_by.empty()) {
            os << " GROUP BY ";
            for (size_t i = 0; i < q.group_by.size(); ++i) {
              if (i > 0) os << ", ";
              os << "t" << q.group_by[i].table_index << ".c"
                 << q.group_by[i].column;
            }
          }
        } else if constexpr (std::is_same_v<T, SelectQuery>) {
          os << "SELECT ";
          for (size_t i = 0; i < q.select_columns.size(); ++i) {
            if (i > 0) os << ", ";
            os << "c" << q.select_columns[i];
          }
          os << " FROM " << q.table;
          AppendPredicate(os, q.predicate);
          if (q.limit.has_value()) os << " LIMIT " << *q.limit;
        } else if constexpr (std::is_same_v<T, InsertQuery>) {
          os << "INSERT INTO " << q.table << " VALUES " << RowToString(q.row);
        } else if constexpr (std::is_same_v<T, UpdateQuery>) {
          os << "UPDATE " << q.table << " SET ";
          for (size_t i = 0; i < q.set_columns.size(); ++i) {
            if (i > 0) os << ", ";
            os << "c" << q.set_columns[i] << "="
               << q.set_values[i].ToString();
          }
          AppendPredicate(os, q.predicate);
        } else if constexpr (std::is_same_v<T, DeleteQuery>) {
          os << "DELETE FROM " << q.table;
          AppendPredicate(os, q.predicate);
        }
      },
      query);
  return os.str();
}

bool IsPointPredicateOn(const Predicate& predicate, ColumnId pk_column) {
  return predicate.size() == 1 && predicate[0].column.table_index == 0 &&
         predicate[0].column.column == pk_column &&
         predicate[0].range.IsPoint();
}

}  // namespace hsdb
