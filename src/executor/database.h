// Database: the engine facade — catalog + executor + statement-boundary
// maintenance + workload observation + the layout-change DDL the storage
// advisor's recommendations execute. Also the engine's telemetry anchor:
// every Execute stamps the result with a phase-decomposed trace span tree
// and (when a cost predictor is installed) the estimator's predicted cost,
// feeds the observed-vs-predicted residual into a CostFeedback accumulator,
// and mirrors query counts/latencies into the MetricsRegistry.
//
// Concurrency (docs/CONCURRENCY.md): Execute is safe to call from many
// threads. Each statement pins the catalog's reclamation epoch, then takes
// the touched tables' locks — readers shared, DML the writer latch plus the
// exclusive lock. Layout changes come in two flavors: ApplyLayout blocks
// writers for the whole rebuild (readers never), while MigrateShadow blocks
// writers only for a short cut-over window and is what the online
// MigrationExecutor uses.
#ifndef HSDB_EXECUTOR_DATABASE_H_
#define HSDB_EXECUTOR_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "executor/executor.h"
#include "executor/observer.h"
#include "telemetry/cost_feedback.h"
#include "telemetry/metrics.h"
#include "telemetry/slowlog.h"

namespace hsdb {

/// Point-in-time view of the engine's query telemetry, returned by
/// Database::TelemetrySnapshot(): lifetime query/error counts, latency
/// percentiles, rematerialization count, and the per-table
/// observed-vs-predicted cost residual statistics.
struct TelemetryReport {
  /// False when telemetry is compiled out or the registry is disabled; the
  /// other fields are then zero/empty.
  bool enabled = false;
  uint64_t queries = 0;
  uint64_t errors = 0;
  /// Physical reorganizations (layout_epoch()).
  uint64_t layout_epochs = 0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  telemetry::CostFeedback::Snapshot cost;

  std::string ToString() const;
};

/// Outcome of one Database::MigrateShadow call — the numbers behind the
/// hsdb_migration_swap_ms / hsdb_migration_replay_rows_total telemetry.
struct ShadowMigrationStats {
  /// False when the table already matched the target (no-op).
  bool rematerialized = false;
  /// True when the table has no primary key, so writes cannot be replayed
  /// and the call degraded to the writer-blocking ApplyLayout path.
  bool fallback_blocking = false;
  /// Rows copied out of the live version by the chunked background scan.
  uint64_t rows_copied = 0;
  /// Ops replayed onto the shadow, background rounds + cut-over tail.
  uint64_t replayed_ops = 0;
  /// Ops replayed inside the cut-over window (the writer-visible part).
  uint64_t tail_ops = 0;
  /// Background phase: chunked copy + merge + catch-up replay rounds.
  double build_ms = 0.0;
  /// Writer-latch hold time of the cut-over (tail replay + pointer swap).
  /// This — not build_ms — is what concurrent writers can feel.
  double cutover_ms = 0.0;
};

class Database {
 public:
  struct Options {
    /// Degree of parallelism for the morsel-parallel scan path. 1 keeps
    /// every query on the serial path (no thread pool is created); d > 1
    /// runs eligible scans on d threads (the caller plus d-1 pool workers).
    /// 0 (the default) reads the HSDB_THREADS environment variable, falling
    /// back to 1 when unset or unparsable.
    int num_threads = 0;
    /// Registry query telemetry lands in; nullptr = the process-wide
    /// MetricsRegistry::Global(). Injected by tests that need isolated
    /// counters.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Lead-fragment slots a shadow rebuild copies per reader-lock
    /// acquisition. Smaller chunks shorten the longest writer wait during
    /// the background build; larger chunks copy faster.
    size_t migration_chunk_rows = 16384;
    /// Catch-up replay rounds a shadow rebuild runs before the cut-over.
    /// Each round drains the op log outside any latch; more rounds shrink
    /// the tail that must be replayed inside the cut-over window.
    int migration_replay_rounds = 4;
    /// Slow-query log configuration (telemetry/slowlog.h): queries at or
    /// above the threshold are recorded into a bounded ring exported by the
    /// HTTP endpoint and hsdb_stat --slowlog. <= 0 disables the log.
    double slowlog_threshold_ms = 25.0;
    size_t slowlog_capacity = 128;
    uint64_t slowlog_sample_every = 1;
  };

  explicit Database(Options options);
  /// Back-compat convenience: default options with an explicit registry.
  explicit Database(telemetry::MetricsRegistry* metrics = nullptr)
      : Database([metrics] {
          Options o;
          o.metrics = metrics;
          return o;
        }()) {}
  ~Database();  // out of line: ThreadPool is forward-declared here
  HSDB_DISALLOW_COPY_AND_ASSIGN(Database);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates a table (convenience passthrough).
  Status CreateTable(const std::string& name, Schema schema,
                     TableLayout layout, PhysicalOptions options = {}) {
    return catalog_.CreateTable(name, std::move(schema), std::move(layout),
                                options);
  }

  /// Executes one query: runs it, stamps the wall-clock time, performs
  /// statement-boundary maintenance on the touched tables (delta merges,
  /// DML only) and notifies the observer. With telemetry enabled the result
  /// also carries the span tree of the execution phases and the predicted
  /// cost (when a predictor is installed); failures invoke
  /// QueryObserver::OnQueryError and count into the error metrics.
  ///
  /// Thread-safe: reads of the same table run concurrently with each other
  /// and with a migration's build phase; DML statements serialize per
  /// table. The whole statement (cost prediction included) runs under one
  /// epoch pin, so a concurrent swap can never free a table version this
  /// statement still reads.
  Result<QueryResult> Execute(const Query& query);

  /// Installs/removes the workload observer (not owned). Install before
  /// concurrent Execute traffic starts (the pointer itself is read
  /// lock-free); the observer's hooks must be thread-safe —
  /// WorkloadRecorder is.
  void set_observer(QueryObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

  // Telemetry -------------------------------------------------------------

  telemetry::MetricsRegistry& metrics() { return *metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return *metrics_; }

  /// Predicts the cost (ms) of a query under the current catalog design.
  /// The StorageAdvisor installs one backed by its cost model; every
  /// executed query then yields an observed-vs-predicted residual.
  /// Install before concurrent Execute traffic starts.
  using CostPredictor = std::function<double(const Query&)>;
  void set_cost_predictor(CostPredictor predictor) {
    cost_predictor_ = std::move(predictor);
  }
  bool has_cost_predictor() const { return cost_predictor_ != nullptr; }

  /// Predicted cost (ms) of `query` under the current design; negative when
  /// no predictor is installed. The caller provides table stability (an
  /// epoch pin + reader locks, e.g. CatalogReadLock) — Execute does this
  /// implicitly, `explain` does it explicitly.
  double PredictCost(const Query& query) const {
    return cost_predictor_ ? cost_predictor_(query) : -1.0;
  }

  /// The slow-query log (always present; recording is threshold-gated).
  telemetry::Slowlog& slowlog() { return slowlog_; }
  const telemetry::Slowlog& slowlog() const { return slowlog_; }

  /// The accumulated observed-vs-predicted residual stream.
  const telemetry::CostFeedback& cost_feedback() const {
    return cost_feedback_;
  }

  /// Snapshot of the engine-level telemetry (see TelemetryReport).
  TelemetryReport TelemetrySnapshot() const;

  // Layout DDL -----------------------------------------------------------

  /// Moves a table to a single-store unpartitioned layout
  /// ("ALTER TABLE name MOVE TO <store>").
  Status MoveTable(const std::string& name, StoreType store);

  /// Reorganizes a table under an arbitrary layout (partitioned or not) and
  /// refreshes its statistics. A non-empty `encodings` (one codec per
  /// logical column) pins the column-store pieces' per-column codecs — the
  /// engine-side realization of the advisor's ENCODING (...) clauses; empty
  /// keeps the adaptive EncodingPicker behavior. Moving to a layout with no
  /// column-store piece (e.g. a budget-driven row-store flip) clears any
  /// existing pins, so a later move back to the column store starts from
  /// the adaptive picker again.
  ///
  /// Holds the table's writer latch for the whole rebuild: readers are
  /// never blocked (they finish on the retired version), writers wait for
  /// the full rematerialization. The online path uses MigrateShadow.
  Status ApplyLayout(const std::string& name, const TableLayout& layout,
                     const std::vector<Encoding>& encodings = {});

  /// The non-blocking form of ApplyLayout: builds the target representation
  /// into a shadow copy in bounded chunks while readers and writers keep
  /// hitting the live version (writes are captured in a TableOpLog),
  /// replays the captured writes, and publishes the shadow with an
  /// epoch-based atomic swap inside a short writer-latch cut-over window.
  /// Readers are never blocked; writers only for cutover_ms. Tables without
  /// a primary key fall back to ApplyLayout (stats.fallback_blocking).
  /// Concurrent migrations of the same table are the caller's to exclude —
  /// the AdaptationController serializes its ticks.
  Result<ShadowMigrationStats> MigrateShadow(
      const std::string& name, const TableLayout& layout,
      const std::vector<Encoding>& encodings = {});

  /// Counts physical reorganizations: +1 for every ApplyLayout/MoveTable/
  /// MigrateShadow that actually rematerialized a table (no-op calls don't
  /// count). The online migration executor applies a recommendation as
  /// several budgeted steps; this counter is how its callers (and tests)
  /// observe that the convergence really happened incrementally.
  uint64_t layout_epoch() const {
    return layout_epoch_.load(std::memory_order_acquire);
  }

  /// Resolved degree of parallelism (>= 1; see Options::num_threads). The
  /// advisor reads this to configure the cost model's parallel scan factor.
  int num_threads() const { return num_threads_; }

  /// Worker pool of the morsel-parallel scan path; nullptr when serial.
  /// The BatchExecutor reuses it so shared scans parallelize like
  /// single-statement scans do.
  ThreadPool* scan_pool() const { return pool_.get(); }

  /// The installed workload observer (nullptr when none). The BatchExecutor
  /// notifies it for queries it executes outside Database::Execute.
  QueryObserver* query_observer() const {
    return observer_.load(std::memory_order_acquire);
  }

 private:
  /// True when per-query telemetry should run right now.
  bool TelemetryOn() const {
    return telemetry::kCompiledIn && metrics_->enabled();
  }
  Result<QueryResult> ExecuteTraced(const Query& query);
  void AfterStatementMaintenance(const Query& query);
  QueryObserver* observer() const {
    return observer_.load(std::memory_order_acquire);
  }
  /// Shared tail of ApplyLayout/MigrateShadow: resolves the target
  /// physical options (encoding pins) and whether the move is a no-op.
  struct LayoutChange {
    PhysicalOptions options;
    bool noop = false;
  };
  LayoutChange ResolveLayoutChange(const LogicalTable& table,
                                   const TableLayout& layout,
                                   const std::vector<Encoding>& encodings);

  Catalog catalog_;
  Executor executor_;
  std::atomic<QueryObserver*> observer_{nullptr};
  std::atomic<uint64_t> layout_epoch_{0};
  int num_threads_ = 1;
  size_t migration_chunk_rows_ = 16384;
  int migration_replay_rounds_ = 4;
  std::unique_ptr<ThreadPool> pool_;  // created only when num_threads_ > 1

  telemetry::MetricsRegistry* metrics_;
  CostPredictor cost_predictor_;
  telemetry::CostFeedback cost_feedback_;
  telemetry::Slowlog slowlog_;
  // Cached metric handles (registered once, incremented lock-free).
  telemetry::Counter* queries_total_[kNumQueryKinds] = {};
  telemetry::Counter* query_errors_total_[kNumQueryKinds] = {};
  telemetry::Counter* slow_queries_total_ = nullptr;
  telemetry::Counter* rematerializations_total_ = nullptr;
  telemetry::Counter* migration_replay_rows_total_ = nullptr;
  telemetry::LogHistogram* query_latency_ms_ = nullptr;
  telemetry::LogHistogram* cost_abs_rel_error_ = nullptr;
  telemetry::LogHistogram* migration_swap_ms_ = nullptr;
  telemetry::Gauge* cost_predicted_total_ms_ = nullptr;
  telemetry::Gauge* cost_observed_total_ms_ = nullptr;
  telemetry::Gauge* epoch_pinned_readers_ = nullptr;
};

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_DATABASE_H_
