// Database: the engine facade — catalog + executor + statement-boundary
// maintenance + workload observation + the layout-change DDL the storage
// advisor's recommendations execute.
#ifndef HSDB_EXECUTOR_DATABASE_H_
#define HSDB_EXECUTOR_DATABASE_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "executor/executor.h"
#include "executor/observer.h"

namespace hsdb {

class Database {
 public:
  Database() : executor_(&catalog_) {}
  HSDB_DISALLOW_COPY_AND_ASSIGN(Database);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates a table (convenience passthrough).
  Status CreateTable(const std::string& name, Schema schema,
                     TableLayout layout, PhysicalOptions options = {}) {
    return catalog_.CreateTable(name, std::move(schema), std::move(layout),
                                options);
  }

  /// Executes one query: runs it, stamps the wall-clock time, performs
  /// statement-boundary maintenance on the touched tables (delta merges) and
  /// notifies the observer.
  Result<QueryResult> Execute(const Query& query);

  /// Installs/removes the workload observer (not owned).
  void set_observer(QueryObserver* observer) { observer_ = observer; }

  // Layout DDL -----------------------------------------------------------

  /// Moves a table to a single-store unpartitioned layout
  /// ("ALTER TABLE name MOVE TO <store>").
  Status MoveTable(const std::string& name, StoreType store);

  /// Reorganizes a table under an arbitrary layout (partitioned or not) and
  /// refreshes its statistics. A non-empty `encodings` (one codec per
  /// logical column) pins the column-store pieces' per-column codecs — the
  /// engine-side realization of the advisor's ENCODING (...) clauses; empty
  /// keeps the adaptive EncodingPicker behavior. Moving to a layout with no
  /// column-store piece (e.g. a budget-driven row-store flip) clears any
  /// existing pins, so a later move back to the column store starts from
  /// the adaptive picker again.
  Status ApplyLayout(const std::string& name, const TableLayout& layout,
                     const std::vector<Encoding>& encodings = {});

  /// Counts physical reorganizations: +1 for every ApplyLayout/MoveTable
  /// that actually rematerialized a table (no-op calls don't count). The
  /// online migration executor applies a recommendation as several budgeted
  /// steps; this counter is how its callers (and tests) observe that the
  /// convergence really happened incrementally.
  uint64_t layout_epoch() const { return layout_epoch_; }

 private:
  Catalog catalog_;
  Executor executor_;
  QueryObserver* observer_ = nullptr;
  uint64_t layout_epoch_ = 0;
};

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_DATABASE_H_
