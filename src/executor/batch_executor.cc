#include "executor/batch_executor.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <sstream>
#include <utility>

#include "common/epoch.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "executor/read_path.h"
#include "storage/scan_dispatch.h"
#include "telemetry/trace.h"

namespace hsdb {

namespace rp = readpath;

/// One shareable read of a batch group and everything its shared execution
/// accumulates. `covers` and `bitmaps` are indexed by row group.
struct BatchExecutor::SharedRead {
  const Query* query = nullptr;
  const SelectQuery* select = nullptr;
  const AggregationQuery* agg = nullptr;
  double queue_wait_ms = 0.0;
  bool delegate = false;
  bool done = false;
  std::vector<const PredicateTerm*> terms;
  std::vector<ColumnId> needed;
  size_t limit = std::numeric_limits<size_t>::max();
  bool grouped = false;
  std::vector<const Fragment*> covers;
  std::vector<Bitmap> bitmaps;
  QueryResult result;
};

BatchExecutor::BatchExecutor(Database* db) : db_(db) {
  telemetry::MetricsRegistry& metrics = db_->metrics();
  parallel_.pool = db_->scan_pool();
  if (parallel_.pool != nullptr) {
    parallel_.morsels_total = &metrics.GetCounter(
        "hsdb_scan_morsels_total",
        "Morsels dispatched by the parallel scan path.");
    parallel_.queue_depth = &metrics.GetGauge(
        "hsdb_scan_queue_depth",
        "Worker-queue depth sampled at each parallel scan dispatch (pending "
        "tasks plus the dispatched morsels).");
  }
  for (int i = 0; i < kNumQueryKinds; ++i) {
    queries_total_[i] = &metrics.GetCounter(
        "hsdb_queries_total", "Queries executed, by query kind.",
        {{"kind", std::string(QueryKindName(static_cast<QueryKind>(i)))}});
  }
  query_latency_ms_ = &metrics.GetHistogram(
      "hsdb_query_latency_ms", "End-to-end query latency in milliseconds.");
  batch_groups_total_ = &metrics.GetCounter(
      "hsdb_batch_groups_total",
      "Shared-scan groups executed by the batch executor.");
  batch_shared_queries_total_ = &metrics.GetCounter(
      "hsdb_batch_shared_queries_total",
      "Queries answered from a shared scan (excludes delegated queries).");
  slow_queries_total_ = &metrics.GetCounter(
      "hsdb_slow_queries_total",
      "Queries at or above the slow-query-log threshold.");
  batch_width_ = &metrics.GetHistogram(
      "hsdb_batch_width",
      "Queries per executed shared-scan group (the amortization width).");
}

bool BatchExecutor::TelemetryOn() const {
  return telemetry::kCompiledIn && db_->metrics().enabled();
}

const std::string* BatchExecutor::ShareableTable(const Query& query) {
  switch (KindOf(query)) {
    case QueryKind::kSelect:
      return &std::get<SelectQuery>(query).table;
    case QueryKind::kAggregation: {
      const auto& q = std::get<AggregationQuery>(query);
      if (q.tables.size() == 1 && q.joins.empty()) return &q.tables.front();
      return nullptr;
    }
    default:
      return nullptr;
  }
}

std::vector<Result<QueryResult>> BatchExecutor::ExecuteBatch(
    const std::vector<Query>& queries,
    const std::vector<double>* queue_waits_ms) {
  const auto wait_of = [&](size_t index) {
    return queue_waits_ms != nullptr && index < queue_waits_ms->size()
               ? (*queue_waits_ms)[index]
               : 0.0;
  };
  std::vector<Result<QueryResult>> out;
  out.reserve(queries.size());
  size_t i = 0;
  while (i < queries.size()) {
    const std::string* table = ShareableTable(queries[i]);
    if (table == nullptr) {
      telemetry::ScopedQueueWait wait(wait_of(i));
      out.push_back(db_->Execute(queries[i]));
      ++i;
      continue;
    }
    // Collect the maximal run of shareable reads on the same table. A DML
    // statement (or a read of another table) ends the run: reads grouped
    // across it could otherwise miss its effects.
    size_t end = i;
    while (end < queries.size()) {
      const std::string* t = ShareableTable(queries[end]);
      if (t == nullptr || *t != *table) break;
      ++end;
    }
    if (end - i == 1) {
      // A lone read gains nothing from the shared pass; keep the
      // per-statement path (cost prediction and tracing included).
      telemetry::ScopedQueueWait wait(wait_of(i));
      out.push_back(db_->Execute(queries[i]));
      ++i;
      continue;
    }
    std::vector<SharedRead> members(end - i);
    for (size_t j = i; j < end; ++j) {
      SharedRead& m = members[j - i];
      m.query = &queries[j];
      m.queue_wait_ms = wait_of(j);
      if (KindOf(queries[j]) == QueryKind::kSelect) {
        m.select = &std::get<SelectQuery>(queries[j]);
      } else {
        m.agg = &std::get<AggregationQuery>(queries[j]);
      }
    }
    ExecuteSharedGroup(*table, &members);
    for (SharedRead& m : members) {
      if (m.done) {
        NotifyShared(*m.query, m.result);
        out.push_back(std::move(m.result));
      } else {
        // Delegated outside the group's reader lock (see header).
        telemetry::ScopedQueueWait wait(m.queue_wait_ms);
        out.push_back(db_->Execute(*m.query));
      }
    }
    i = end;
  }
  return out;
}

void BatchExecutor::PrepareMember(const LogicalTable& table,
                                  SharedRead* m) const {
  const Schema& schema = table.schema();
  if (m->select != nullptr) {
    const SelectQuery& q = *m->select;
    for (ColumnId col : q.select_columns) {
      if (col >= schema.num_columns()) {
        m->delegate = true;
        return;
      }
    }
    m->terms = rp::TermsForTable(q.predicate, 0);
    if (m->terms.size() != q.predicate.size() ||
        !rp::ValidateTerms(schema, m->terms).ok()) {
      m->delegate = true;
      return;
    }
    // The point fast path is already sub-linear; sharing a full scan with
    // it would be a regression, and the serial path must stay authoritative.
    if (schema.primary_key().size() == 1 &&
        IsPointPredicateOn(q.predicate, schema.primary_key()[0])) {
      m->delegate = true;
      return;
    }
    m->limit = q.limit.value_or(std::numeric_limits<size_t>::max());
    m->needed = q.select_columns;
    for (const PredicateTerm* term : m->terms) {
      m->needed.push_back(term->column.column);
    }
    m->needed = rp::UniqueColumns(std::move(m->needed));
  } else {
    const AggregationQuery& q = *m->agg;
    if (q.aggregates.empty()) {
      m->delegate = true;
      return;
    }
    auto bad_ref = [&](const ColumnRef& ref) {
      return ref.table_index != 0 || ref.column >= schema.num_columns();
    };
    for (const AggregateExpr& agg : q.aggregates) {
      if (agg.fn == AggFn::kCount) continue;
      if (bad_ref(agg.column) ||
          !IsNumeric(schema.column(agg.column.column).type)) {
        m->delegate = true;
        return;
      }
    }
    for (const ColumnRef& ref : q.group_by) {
      if (bad_ref(ref)) {
        m->delegate = true;
        return;
      }
    }
    for (const PredicateTerm& term : q.predicate) {
      if (bad_ref(term.column)) {
        m->delegate = true;
        return;
      }
    }
    m->terms = rp::TermsForTable(q.predicate, 0);
    if (!rp::ValidateTerms(schema, m->terms).ok()) {
      m->delegate = true;
      return;
    }
    m->grouped = !q.group_by.empty();
    for (const AggregateExpr& agg : q.aggregates) {
      if (agg.fn != AggFn::kCount) m->needed.push_back(agg.column.column);
    }
    for (const ColumnRef& ref : q.group_by) m->needed.push_back(ref.column);
    for (const PredicateTerm* term : m->terms) {
      m->needed.push_back(term->column.column);
    }
    m->needed = rp::UniqueColumns(std::move(m->needed));
  }

  const auto& groups = table.groups();
  m->covers.assign(groups.size(), nullptr);
  m->bitmaps.resize(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    const Fragment* cover = rp::CoveringFragment(groups[g], m->needed);
    if (cover == nullptr) {
      // Vertical split: the PK-stitch path stays per-statement.
      m->delegate = true;
      return;
    }
    if (cover->table->store() == StoreType::kRow) {
      // A sorted-index seed is sub-linear; a shared full scan would cost
      // more than the one-at-a-time path it replaces.
      const auto& rs = static_cast<const RowTable&>(*cover->table);
      for (const PredicateTerm* term : m->terms) {
        if (rs.HasSortedIndex(cover->FragColumn(term->column.column))) {
          m->delegate = true;
          return;
        }
      }
    }
    m->covers[g] = cover;
  }
}

void BatchExecutor::MaterializeMember(const LogicalTable& table,
                                      SharedRead* m) const {
  const size_t num_groups = table.groups().size();
  if (m->select != nullptr) {
    const SelectQuery& q = *m->select;
    for (size_t g = 0; g < num_groups; ++g) {
      if (m->result.rows.size() >= m->limit) break;
      const Fragment& cover = *m->covers[g];
      if (rp::UseParallelScan(parallel_, cover, m->terms)) {
        rp::ParallelSelectCover(parallel_, cover, m->terms, q.select_columns,
                                m->limit, &m->bitmaps[g], &m->result);
      } else {
        rp::SelectFromBitmap(cover, m->bitmaps[g], q.select_columns, m->limit,
                             &m->result);
      }
    }
  } else {
    const AggregationQuery& q = *m->agg;
    std::vector<AggState> totals(q.aggregates.size());
    GroupMap group_map;
    for (size_t g = 0; g < num_groups; ++g) {
      const Fragment& cover = *m->covers[g];
      if (rp::UseParallelScan(parallel_, cover, m->terms)) {
        rp::ParallelAggregateCover(parallel_, cover, m->terms, q, m->grouped,
                                   &m->bitmaps[g], &totals, &group_map);
      } else {
        rp::AggregateFromBitmap(cover, m->bitmaps[g], q, m->grouped, &totals,
                                &group_map);
      }
    }
    m->result = rp::FinalizeAggregation(q, m->grouped, totals, group_map);
  }
  m->done = true;
}

void BatchExecutor::ExecuteSharedGroup(const std::string& table_name,
                                       std::vector<SharedRead>* members) {
  Stopwatch sw;
  size_t shared = 0;
  // The batch worker thread has no tracer installed, so without this the
  // scan_shared span would vanish. One tracer covers the whole group; every
  // shared member gets the same finished tree (the group IS their
  // execution), which is what `explain analyze` renders for batched reads.
  std::optional<telemetry::Tracer> tracer;
  if (TelemetryOn()) tracer.emplace("batch_group");
  {
    // Same discipline as a serial read statement: pin the reclamation epoch,
    // then take the table's reader lock for the whole group.
    EpochPin pin(&db_->catalog().epochs());
    std::shared_ptr<TableSync> sync = db_->catalog().sync(table_name);
    std::shared_lock<std::shared_mutex> rd(sync->rw);
    const LogicalTable* table = db_->catalog().GetTable(table_name);
    if (table == nullptr) return;  // every member delegates to NotFound

    for (SharedRead& m : *members) PrepareMember(*table, &m);

    // Shared predicate pass, per (row group, covering fragment): one
    // MultiFilterRangeSlice per predicate column narrows every member's
    // bitmap in a single decode of the encoded segment. Morsel-parallel
    // when the pool is installed — disjoint 64-aligned slices of all the
    // bitmaps, exactly like the single-query parallel scan.
    telemetry::ScopedSpan scan_span("scan_shared");
    const auto& groups = table->groups();
    for (size_t g = 0; g < groups.size(); ++g) {
      std::map<const Fragment*, std::vector<SharedRead*>> buckets;
      for (SharedRead& m : *members) {
        if (!m.delegate) buckets[m.covers[g]].push_back(&m);
      }
      for (auto& [frag, ms] : buckets) {
        for (SharedRead* m : ms) m->bitmaps[g] = frag->table->live_bitmap();
        std::map<ColumnId, std::vector<RangeScanTarget>> by_col;
        for (SharedRead* m : ms) {
          for (const PredicateTerm* term : m->terms) {
            by_col[frag->FragColumn(term->column.column)].push_back(
                RangeScanTarget{&term->range, &m->bitmaps[g]});
          }
        }
        if (by_col.empty()) continue;  // unfiltered scans: live bitmap is it
        const size_t n = frag->table->slot_count();
        if (parallel_.pool != nullptr && n > rp::kMorselRows) {
          const size_t morsels = rp::MorselCount(n);
          rp::NoteMorsels(parallel_, morsels);
          parallel_.pool->ParallelFor(morsels, [&](size_t mi) {
            const size_t begin = mi * rp::kMorselRows;
            const size_t slice_end = std::min(begin + rp::kMorselRows, n);
            for (auto& [col, targets] : by_col) {
              frag->table->MultiFilterRangeSlice(col, targets.data(),
                                                 targets.size(), begin,
                                                 slice_end);
            }
          });
        } else {
          for (auto& [col, targets] : by_col) {
            frag->table->MultiFilterRangeSlice(col, targets.data(),
                                               targets.size(), 0, n);
          }
        }
      }
    }

    for (SharedRead& m : *members) {
      if (!m.delegate) {
        MaterializeMember(*table, &m);
        ++shared;
      }
    }
  }
  std::shared_ptr<const telemetry::TraceSpan> tree;
  if (tracer.has_value()) {
    tree = std::make_shared<const telemetry::TraceSpan>(tracer->Finish());
  }
  if (shared == 0) return;
  // Amortized cost share: the latency a co-running client of this group
  // actually observed. This is what the workload recorder feeds the
  // batch-aware cost model.
  const double share_ms = sw.ElapsedMs() / static_cast<double>(shared);
  std::string trace_summary;
  if (tree != nullptr) {
    std::ostringstream phases;
    for (size_t c = 0; c < tree->children.size(); ++c) {
      if (c > 0) phases << ' ';
      phases << tree->children[c].name << '=' << tree->children[c].elapsed_ms;
    }
    trace_summary = phases.str();
  }
  telemetry::Slowlog& slowlog = db_->slowlog();
  // Slow-query accounting mirrors Database::ExecuteTraced: telemetry-gated.
  const double slow_threshold =
      tracer.has_value() ? slowlog.threshold_ms() : 0.0;
  for (SharedRead& m : *members) {
    if (!m.done) continue;
    m.result.elapsed_ms = share_ms;
    m.result.trace = tree;
    if (slow_threshold > 0.0 && share_ms >= slow_threshold) {
      slow_queries_total_->Increment();
      if (slowlog.ShouldRecord(share_ms)) {
        telemetry::SlowlogRecord record;
        record.query = QueryToString(*m.query);
        record.kind = std::string(QueryKindName(KindOf(*m.query)));
        record.elapsed_ms = share_ms;
        record.queue_wait_ms = m.queue_wait_ms;
        record.trace_summary = trace_summary;
        record.shared = true;
        slowlog.Record(std::move(record));
      }
    }
  }
  if (TelemetryOn()) {
    batch_groups_total_->Increment();
    batch_shared_queries_total_->Increment(shared);
    batch_width_->Observe(static_cast<double>(shared));
  }
}

void BatchExecutor::NotifyShared(const Query& query,
                                 const QueryResult& result) {
  if (TelemetryOn()) {
    queries_total_[static_cast<int>(KindOf(query))]->Increment();
    query_latency_ms_->Observe(result.elapsed_ms);
  }
  if (QueryObserver* obs = db_->query_observer()) obs->OnQuery(query, result);
}

}  // namespace hsdb
