#include "executor/database.h"

#include "common/stopwatch.h"
#include "storage/conversion.h"

namespace hsdb {

Result<QueryResult> Database::Execute(const Query& query) {
  Stopwatch sw;
  HSDB_ASSIGN_OR_RETURN(QueryResult result, executor_.Execute(query));
  // Statement-boundary maintenance on the tables the query touched.
  for (const std::string& name : TablesOf(query)) {
    if (LogicalTable* table = catalog_.GetTable(name)) {
      table->AfterStatement();
    }
  }
  result.elapsed_ms = sw.ElapsedMs();
  if (observer_ != nullptr) observer_->OnQuery(query, result);
  return result;
}

Status Database::MoveTable(const std::string& name, StoreType store) {
  return ApplyLayout(name, TableLayout::SingleStore(store));
}

Status Database::ApplyLayout(const std::string& name,
                             const TableLayout& layout,
                             const std::vector<Encoding>& encodings) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_.Find(name));
  PhysicalOptions options = table->physical_options();
  if (!encodings.empty()) {
    options.column.column_encodings.assign(encodings.begin(),
                                           encodings.end());
  }
  // A layout without a column-store piece has no encoded segments: drop any
  // codec pins instead of carrying them along, so a later move back to the
  // column store re-enters the adaptive picker rather than resurrecting
  // codecs that were solved for an old layout or budget.
  if (!HasColumnStorePiece(layout)) {
    options.column.column_encodings.clear();
  }
  // No-op only when both the layout and the pinned codecs already match;
  // an encoding-only change still rematerializes (the re-encode happens at
  // the bulk-load merge).
  if (table->layout() == layout &&
      options.column.column_encodings ==
          table->physical_options().column.column_encodings) {
    return Status::OK();
  }
  HSDB_ASSIGN_OR_RETURN(std::unique_ptr<LogicalTable> rebuilt,
                        Rematerialize(*table, layout, options));
  HSDB_RETURN_IF_ERROR(catalog_.ReplaceTable(name, std::move(rebuilt)));
  ++layout_epoch_;
  return catalog_.UpdateStatistics(name);
}

}  // namespace hsdb
