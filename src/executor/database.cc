#include "executor/database.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "storage/conversion.h"
#include "storage/shadow_rebuild.h"
#include "telemetry/trace.h"

namespace hsdb {

namespace {

/// Resolves Options::num_threads: an explicit value wins, 0 consults the
/// HSDB_THREADS environment variable, anything unusable degrades to serial.
int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("HSDB_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 1;
}

bool IsDml(QueryKind kind) {
  return kind == QueryKind::kInsert || kind == QueryKind::kUpdate ||
         kind == QueryKind::kDelete;
}

/// The locks one statement holds for its whole execution (including
/// statement-boundary maintenance and observer notification). Readers take
/// the touched tables' rw locks shared; DML takes writer latch + exclusive
/// rw, in the global order writer_latch -> rw, names sorted (DML is
/// single-table today, the sort future-proofs multi-table writes).
struct StatementLocks {
  std::vector<std::shared_ptr<TableSync>> syncs;
  std::vector<WriterLatchGuard> latches;
  std::vector<std::shared_lock<std::shared_mutex>> shared;
  std::vector<std::unique_lock<std::shared_mutex>> exclusive;

  void Acquire(Catalog& catalog, const Query& query, bool dml) {
    std::vector<std::string> tables = TablesOf(query);
    std::sort(tables.begin(), tables.end());
    tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
    syncs.reserve(tables.size());
    for (const std::string& name : tables) {
      syncs.push_back(catalog.sync(name));
    }
    if (dml) {
      for (auto& sync : syncs) {
        latches.emplace_back(sync.get());
        exclusive.emplace_back(sync->rw);
      }
    } else {
      for (auto& sync : syncs) {
        shared.emplace_back(sync->rw);
      }
    }
  }
};

}  // namespace

Database::Database(Options options)
    : executor_(&catalog_),
      num_threads_(ResolveNumThreads(options.num_threads)),
      migration_chunk_rows_(
          options.migration_chunk_rows > 0 ? options.migration_chunk_rows
                                           : 16384),
      migration_replay_rounds_(std::max(0, options.migration_replay_rounds)),
      metrics_(options.metrics != nullptr
                   ? options.metrics
                   : &telemetry::MetricsRegistry::Global()),
      slowlog_(telemetry::Slowlog::Options{options.slowlog_threshold_ms,
                                           options.slowlog_capacity,
                                           options.slowlog_sample_every}) {
  // Before any table exists, so every TableSync is born instrumented.
  catalog_.set_metrics(metrics_);
  if (num_threads_ > 1) {
    // d-way parallelism = the query thread + d-1 pool workers.
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads_) - 1);
    ParallelContext ctx;
    ctx.pool = pool_.get();
    ctx.morsels_total = &metrics_->GetCounter(
        "hsdb_scan_morsels_total",
        "Morsels dispatched by the parallel scan path.");
    ctx.queue_depth = &metrics_->GetGauge(
        "hsdb_scan_queue_depth",
        "Worker-queue depth sampled at each parallel scan dispatch (pending "
        "tasks plus the dispatched morsels).");
    executor_.set_parallel(ctx);
  }
  for (int i = 0; i < kNumQueryKinds; ++i) {
    const std::string kind(QueryKindName(static_cast<QueryKind>(i)));
    queries_total_[i] = &metrics_->GetCounter(
        "hsdb_queries_total", "Queries executed, by query kind.",
        {{"kind", kind}});
    query_errors_total_[i] = &metrics_->GetCounter(
        "hsdb_query_errors_total", "Queries that failed, by query kind.",
        {{"kind", kind}});
  }
  slow_queries_total_ = &metrics_->GetCounter(
      "hsdb_slow_queries_total",
      "Queries at or above the slow-query-log threshold.");
  rematerializations_total_ = &metrics_->GetCounter(
      "hsdb_rematerializations_total",
      "Physical table reorganizations (layout/encoding rebuilds).");
  migration_replay_rows_total_ = &metrics_->GetCounter(
      "hsdb_migration_replay_rows_total",
      "Write ops replayed onto shadow copies during non-blocking "
      "migrations (background rounds + cut-over tails).");
  query_latency_ms_ = &metrics_->GetHistogram(
      "hsdb_query_latency_ms", "End-to-end query latency in milliseconds.");
  cost_abs_rel_error_ = &metrics_->GetHistogram(
      "hsdb_cost_abs_rel_error",
      "Absolute relative error |observed-predicted|/observed of the cost "
      "model, per query.",
      {}, /*min_bound=*/1e-4);
  migration_swap_ms_ = &metrics_->GetHistogram(
      "hsdb_migration_swap_ms",
      "Writer-latch hold time of a migration cut-over (tail replay + "
      "pointer swap), per MigrateShadow call.",
      {}, /*min_bound=*/1e-4);
  cost_predicted_total_ms_ = &metrics_->GetGauge(
      "hsdb_cost_predicted_total_ms",
      "Sum of predicted query costs (ms) over all costed queries.");
  cost_observed_total_ms_ = &metrics_->GetGauge(
      "hsdb_cost_observed_total_ms",
      "Sum of observed query times (ms) over all costed queries.");
  epoch_pinned_readers_ = &metrics_->GetGauge(
      "hsdb_epoch_pinned_readers",
      "In-flight statements holding an epoch pin, sampled at each "
      "migration cut-over (readers the retired version must outlive).");
}

Database::~Database() = default;

Result<QueryResult> Database::Execute(const Query& query) {
  // Pin the reclamation epoch for the whole statement — every catalog
  // pointer this statement resolves (cost prediction included) stays alive
  // past any concurrent swap — then take the touched tables' locks.
  EpochPin pin(&catalog_.epochs());
  const QueryKind kind = KindOf(query);
  StatementLocks locks;
  locks.Acquire(catalog_, query, IsDml(kind));

  if (TelemetryOn()) return ExecuteTraced(query);
  // Fast path: no tracer installed, no metric updates — behaviorally
  // identical to the pre-telemetry executor (plus the error hook).
  Stopwatch sw;
  Result<QueryResult> executed = executor_.Execute(query);
  if (!executed.ok()) {
    if (QueryObserver* obs = observer()) {
      obs->OnQueryError(query, executed.status());
    }
    return executed.status();
  }
  QueryResult result = std::move(executed).value();
  AfterStatementMaintenance(query);
  result.elapsed_ms = sw.ElapsedMs();
  if (QueryObserver* obs = observer()) obs->OnQuery(query, result);
  return result;
}

Result<QueryResult> Database::ExecuteTraced(const Query& query) {
  const QueryKind kind = KindOf(query);
  // Predict before executing: the prediction must see the pre-statement
  // catalog state (an INSERT changes delta sizes the estimator reads).
  double predicted_ms = -1.0;
  if (cost_predictor_) predicted_ms = cost_predictor_(query);

  telemetry::Tracer tracer("query");
  Stopwatch sw;
  Result<QueryResult> executed = [&] {
    telemetry::ScopedSpan span("execute");
    return executor_.Execute(query);
  }();
  if (!executed.ok()) {
    query_errors_total_[static_cast<int>(kind)]->Increment();
    if (QueryObserver* obs = observer()) {
      obs->OnQueryError(query, executed.status());
    }
    return executed.status();
  }
  QueryResult result = std::move(executed).value();
  {
    telemetry::ScopedSpan span("delta_merge");
    AfterStatementMaintenance(query);
  }
  result.elapsed_ms = sw.ElapsedMs();
  result.trace = std::make_shared<const telemetry::TraceSpan>(tracer.Finish());

  queries_total_[static_cast<int>(kind)]->Increment();
  query_latency_ms_->Observe(result.elapsed_ms);
  const double slow_threshold = slowlog_.threshold_ms();
  if (slow_threshold > 0.0 && result.elapsed_ms >= slow_threshold) {
    slow_queries_total_->Increment();
    if (slowlog_.ShouldRecord(result.elapsed_ms)) {
      // Only now pay for rendering the query and trace summary.
      telemetry::SlowlogRecord record;
      record.query = QueryToString(query);
      record.kind = std::string(QueryKindName(kind));
      record.elapsed_ms = result.elapsed_ms;
      record.queue_wait_ms = telemetry::CurrentQueueWaitMs();
      record.predicted_cost_ms = predicted_ms;
      if (result.trace != nullptr) {
        std::ostringstream phases;
        for (size_t i = 0; i < result.trace->children.size(); ++i) {
          if (i > 0) phases << ' ';
          phases << result.trace->children[i].name << '='
                 << result.trace->children[i].elapsed_ms;
        }
        record.trace_summary = phases.str();
      }
      slowlog_.Record(std::move(record));
    }
  }
  if (predicted_ms >= 0.0) {
    result.predicted_cost_ms = predicted_ms;
    const std::vector<std::string> tables = TablesOf(query);
    cost_feedback_.Record(tables.empty() ? std::string() : tables.front(),
                          predicted_ms, result.elapsed_ms);
    if (result.elapsed_ms > 0.0) {
      cost_abs_rel_error_->Observe(
          std::abs(result.elapsed_ms - predicted_ms) / result.elapsed_ms);
      cost_predicted_total_ms_->Add(predicted_ms);
      cost_observed_total_ms_->Add(result.elapsed_ms);
    }
  }
  if (QueryObserver* obs = observer()) obs->OnQuery(query, result);
  return result;
}

void Database::AfterStatementMaintenance(const Query& query) {
  // Statement-boundary maintenance on the tables the query touched. DML
  // only: reads never grow a delta, and the caller holds the exclusive
  // table lock only for DML — a merge moves row ids, which must never
  // happen under concurrent readers.
  if (!IsDml(KindOf(query))) return;
  for (const std::string& name : TablesOf(query)) {
    if (LogicalTable* table = catalog_.GetTable(name)) {
      table->AfterStatement();
    }
  }
}

TelemetryReport Database::TelemetrySnapshot() const {
  TelemetryReport report;
  report.enabled = TelemetryOn();
  report.layout_epochs = layout_epoch();
  if (!report.enabled) return report;
  for (int i = 0; i < kNumQueryKinds; ++i) {
    report.queries += queries_total_[i]->value();
    report.errors += query_errors_total_[i]->value();
  }
  report.p50_latency_ms = query_latency_ms_->Quantile(0.5);
  report.p95_latency_ms = query_latency_ms_->Quantile(0.95);
  report.p99_latency_ms = query_latency_ms_->Quantile(0.99);
  report.cost = cost_feedback_.snapshot();
  return report;
}

std::string TelemetryReport::ToString() const {
  std::ostringstream os;
  if (!enabled) {
    os << "telemetry disabled (" << layout_epochs << " layout epoch(s))\n";
    return os.str();
  }
  os << "queries " << queries << " (errors " << errors << "), latency p50 "
     << p50_latency_ms << " ms p95 " << p95_latency_ms << " ms p99 "
     << p99_latency_ms << " ms, layout epochs " << layout_epochs << "\n"
     << cost.ToString();
  return os.str();
}

Status Database::MoveTable(const std::string& name, StoreType store) {
  return ApplyLayout(name, TableLayout::SingleStore(store));
}

Database::LayoutChange Database::ResolveLayoutChange(
    const LogicalTable& table, const TableLayout& layout,
    const std::vector<Encoding>& encodings) {
  LayoutChange change;
  change.options = table.physical_options();
  if (!encodings.empty()) {
    change.options.column.column_encodings.assign(encodings.begin(),
                                                  encodings.end());
  }
  // A layout without a column-store piece has no encoded segments: drop any
  // codec pins instead of carrying them along, so a later move back to the
  // column store re-enters the adaptive picker rather than resurrecting
  // codecs that were solved for an old layout or budget.
  if (!HasColumnStorePiece(layout)) {
    change.options.column.column_encodings.clear();
  }
  // No-op only when both the layout and the pinned codecs already match;
  // an encoding-only change still rematerializes (the re-encode happens at
  // the bulk-load merge).
  change.noop =
      table.layout() == layout &&
      change.options.column.column_encodings ==
          table.physical_options().column.column_encodings;
  return change;
}

Status Database::ApplyLayout(const std::string& name,
                             const TableLayout& layout,
                             const std::vector<Encoding>& encodings) {
  EpochPin pin(&catalog_.epochs());
  std::shared_ptr<TableSync> sync = catalog_.sync(name);
  // Writers are excluded for the whole rebuild (readers never: they finish
  // against the retired version). The resolve happens under the latch so
  // no writer sneaks a row in between the copy and the swap.
  WriterLatchGuard latch(sync.get());
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_.Find(name));
  const LayoutChange change = ResolveLayoutChange(*table, layout, encodings);
  if (change.noop) return Status::OK();
  HSDB_ASSIGN_OR_RETURN(std::unique_ptr<LogicalTable> rebuilt,
                        Rematerialize(*table, layout, change.options));
  HSDB_RETURN_IF_ERROR(catalog_.ReplaceTable(name, std::move(rebuilt)));
  layout_epoch_.fetch_add(1, std::memory_order_acq_rel);
  catalog_.epochs().Advance();
  if (TelemetryOn()) rematerializations_total_->Increment();
  return catalog_.UpdateStatistics(name);
}

Result<ShadowMigrationStats> Database::MigrateShadow(
    const std::string& name, const TableLayout& layout,
    const std::vector<Encoding>& encodings) {
  ShadowMigrationStats stats;
  EpochPin pin(&catalog_.epochs());
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_.Find(name));
  if (table->schema().primary_key().empty()) {
    // Replay identifies rows by primary key; without one the delta cannot
    // be applied onto the shadow. Degrade to the writer-blocking rebuild.
    pin.Release();
    HSDB_RETURN_IF_ERROR(ApplyLayout(name, layout, encodings));
    stats.rematerialized = true;
    stats.fallback_blocking = true;
    return stats;
  }
  const LayoutChange change = ResolveLayoutChange(*table, layout, encodings);
  if (change.noop) return stats;

  std::shared_ptr<TableSync> sync = catalog_.sync(name);
  TableOpLog log;
  {
    // Attach under the writer latch: every statement is entirely before
    // (its rows are seen by the chunked copy) or entirely after (its ops
    // land in the log) this point. Attaching also suppresses delta merges,
    // keeping the copy's row-id cursor sound.
    WriterLatchGuard latch(sync.get());
    HSDB_ASSIGN_OR_RETURN(table, catalog_.Find(name));
    table->AttachOpLog(&log);
  }
  // From here on every early return must detach the log again.
  auto detach = [&] {
    WriterLatchGuard latch(sync.get());
    table->DetachOpLog();
  };

  Stopwatch build_sw;
  Result<std::unique_ptr<LogicalTable>> shadow_or = [&] {
    telemetry::ScopedSpan span("migration_build");
    Result<std::unique_ptr<LogicalTable>> made =
        MakeEmptyLike(*table, layout, change.options);
    if (!made.ok()) return made;
    std::unique_ptr<LogicalTable> shadow = std::move(made).value();

    // Phase 1 — chunked copy: each chunk holds the reader lock just long
    // enough to collect migration_chunk_rows slots; inserts into the
    // private shadow happen outside it. The scan bound is frozen per group
    // at the first chunk: rows appended later are covered by the op log,
    // and row ids are stable because merges are suppressed.
    std::vector<Row> buffer;
    for (size_t g = 0; g < table->groups().size(); ++g) {
      size_t cursor = 0;
      size_t bound = 0;
      bool first = true;
      while (true) {
        buffer.clear();
        {
          std::shared_lock<std::shared_mutex> rd(sync->rw);
          if (first) {
            bound = table->GroupSlotCount(g);
            first = false;
          }
          const size_t hi = std::min(cursor + migration_chunk_rows_, bound);
          if (cursor >= hi) break;
          CollectGroupRows(*table, g, cursor, hi, &buffer);
          cursor = hi;
        }
        for (Row& row : buffer) {
          Status inserted = shadow->Insert(std::move(row));
          if (!inserted.ok()) {
            return Result<std::unique_ptr<LogicalTable>>(inserted);
          }
          ++stats.rows_copied;
        }
      }
    }
    shadow->ForceMerge();

    // Phase 2 — catch-up replay: drain the writes that raced the copy,
    // outside any latch, until the log runs dry or the round budget is
    // spent. Whatever remains is the cut-over tail.
    for (int round = 0; round < migration_replay_rounds_; ++round) {
      std::vector<TableOp> ops = log.Drain();
      if (ops.empty()) break;
      Status replayed = ReplayOps(shadow.get(), ops, &stats.replayed_ops);
      if (!replayed.ok()) {
        return Result<std::unique_ptr<LogicalTable>>(replayed);
      }
    }
    return Result<std::unique_ptr<LogicalTable>>(std::move(shadow));
  }();
  if (!shadow_or.ok()) {
    detach();
    return shadow_or.status();
  }
  std::unique_ptr<LogicalTable> shadow = std::move(shadow_or).value();
  stats.build_ms = build_sw.ElapsedMs();

  // Phase 3 — cut-over: the only writer-visible window. Under the writer
  // latch (readers keep scanning): replay the tail, detach the log, swap
  // the catalog pointer. The old version is retired, not destroyed — any
  // reader that resolved it under an earlier pin finishes undisturbed.
  Stopwatch cutover_sw;
  {
    telemetry::ScopedSpan span("migration_swap");
    WriterLatchGuard latch(sync.get());
    std::vector<TableOp> tail = log.Drain();
    stats.tail_ops = tail.size();
    Status replayed = ReplayOps(shadow.get(), tail, &stats.replayed_ops);
    table->DetachOpLog();
    if (!replayed.ok()) return replayed;
    HSDB_RETURN_IF_ERROR(catalog_.ReplaceTable(name, std::move(shadow)));
    layout_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  stats.cutover_ms = cutover_sw.ElapsedMs();
  stats.rematerialized = true;
  catalog_.epochs().Advance();

  if (TelemetryOn()) {
    rematerializations_total_->Increment();
    migration_swap_ms_->Observe(stats.cutover_ms);
    migration_replay_rows_total_->Increment(stats.replayed_ops);
    epoch_pinned_readers_->Set(
        static_cast<double>(catalog_.epochs().pinned_readers()));
  }
  // Fresh statistics for the new version (under the reader lock, inside
  // UpdateStatistics — writers wait, readers don't).
  HSDB_RETURN_IF_ERROR(catalog_.UpdateStatistics(name));
  return stats;
}

}  // namespace hsdb
