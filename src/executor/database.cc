#include "executor/database.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "storage/conversion.h"
#include "telemetry/trace.h"

namespace hsdb {

namespace {

/// Resolves Options::num_threads: an explicit value wins, 0 consults the
/// HSDB_THREADS environment variable, anything unusable degrades to serial.
int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("HSDB_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 1;
}

}  // namespace

Database::Database(Options options)
    : executor_(&catalog_),
      num_threads_(ResolveNumThreads(options.num_threads)),
      metrics_(options.metrics != nullptr
                   ? options.metrics
                   : &telemetry::MetricsRegistry::Global()) {
  if (num_threads_ > 1) {
    // d-way parallelism = the query thread + d-1 pool workers.
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads_) - 1);
    ParallelContext ctx;
    ctx.pool = pool_.get();
    ctx.morsels_total = &metrics_->GetCounter(
        "hsdb_scan_morsels_total",
        "Morsels dispatched by the parallel scan path.");
    ctx.queue_depth = &metrics_->GetGauge(
        "hsdb_scan_queue_depth",
        "Worker-queue depth sampled at each parallel scan dispatch (pending "
        "tasks plus the dispatched morsels).");
    executor_.set_parallel(ctx);
  }
  for (int i = 0; i < kNumQueryKinds; ++i) {
    const std::string kind(QueryKindName(static_cast<QueryKind>(i)));
    queries_total_[i] = &metrics_->GetCounter(
        "hsdb_queries_total", "Queries executed, by query kind.",
        {{"kind", kind}});
    query_errors_total_[i] = &metrics_->GetCounter(
        "hsdb_query_errors_total", "Queries that failed, by query kind.",
        {{"kind", kind}});
  }
  rematerializations_total_ = &metrics_->GetCounter(
      "hsdb_rematerializations_total",
      "Physical table reorganizations (layout/encoding rebuilds).");
  query_latency_ms_ = &metrics_->GetHistogram(
      "hsdb_query_latency_ms", "End-to-end query latency in milliseconds.");
  cost_abs_rel_error_ = &metrics_->GetHistogram(
      "hsdb_cost_abs_rel_error",
      "Absolute relative error |observed-predicted|/observed of the cost "
      "model, per query.",
      {}, /*min_bound=*/1e-4);
  cost_predicted_total_ms_ = &metrics_->GetGauge(
      "hsdb_cost_predicted_total_ms",
      "Sum of predicted query costs (ms) over all costed queries.");
  cost_observed_total_ms_ = &metrics_->GetGauge(
      "hsdb_cost_observed_total_ms",
      "Sum of observed query times (ms) over all costed queries.");
}

Database::~Database() = default;

Result<QueryResult> Database::Execute(const Query& query) {
  if (TelemetryOn()) return ExecuteTraced(query);
  // Fast path: no tracer installed, no metric updates — behaviorally
  // identical to the pre-telemetry executor (plus the error hook).
  Stopwatch sw;
  Result<QueryResult> executed = executor_.Execute(query);
  if (!executed.ok()) {
    if (observer_ != nullptr) observer_->OnQueryError(query, executed.status());
    return executed.status();
  }
  QueryResult result = std::move(executed).value();
  AfterStatementMaintenance(query);
  result.elapsed_ms = sw.ElapsedMs();
  if (observer_ != nullptr) observer_->OnQuery(query, result);
  return result;
}

Result<QueryResult> Database::ExecuteTraced(const Query& query) {
  const QueryKind kind = KindOf(query);
  // Predict before executing: the prediction must see the pre-statement
  // catalog state (an INSERT changes delta sizes the estimator reads).
  double predicted_ms = -1.0;
  if (cost_predictor_) predicted_ms = cost_predictor_(query);

  telemetry::Tracer tracer("query");
  Stopwatch sw;
  Result<QueryResult> executed = [&] {
    telemetry::ScopedSpan span("execute");
    return executor_.Execute(query);
  }();
  if (!executed.ok()) {
    query_errors_total_[static_cast<int>(kind)]->Increment();
    if (observer_ != nullptr) observer_->OnQueryError(query, executed.status());
    return executed.status();
  }
  QueryResult result = std::move(executed).value();
  {
    telemetry::ScopedSpan span("delta_merge");
    AfterStatementMaintenance(query);
  }
  result.elapsed_ms = sw.ElapsedMs();
  result.trace = std::make_shared<const telemetry::TraceSpan>(tracer.Finish());

  queries_total_[static_cast<int>(kind)]->Increment();
  query_latency_ms_->Observe(result.elapsed_ms);
  if (predicted_ms >= 0.0) {
    result.predicted_cost_ms = predicted_ms;
    const std::vector<std::string> tables = TablesOf(query);
    cost_feedback_.Record(tables.empty() ? std::string() : tables.front(),
                          predicted_ms, result.elapsed_ms);
    if (result.elapsed_ms > 0.0) {
      cost_abs_rel_error_->Observe(
          std::abs(result.elapsed_ms - predicted_ms) / result.elapsed_ms);
      cost_predicted_total_ms_->Add(predicted_ms);
      cost_observed_total_ms_->Add(result.elapsed_ms);
    }
  }
  if (observer_ != nullptr) observer_->OnQuery(query, result);
  return result;
}

void Database::AfterStatementMaintenance(const Query& query) {
  // Statement-boundary maintenance on the tables the query touched.
  for (const std::string& name : TablesOf(query)) {
    if (LogicalTable* table = catalog_.GetTable(name)) {
      table->AfterStatement();
    }
  }
}

TelemetryReport Database::TelemetrySnapshot() const {
  TelemetryReport report;
  report.enabled = TelemetryOn();
  report.layout_epochs = layout_epoch_;
  if (!report.enabled) return report;
  for (int i = 0; i < kNumQueryKinds; ++i) {
    report.queries += queries_total_[i]->value();
    report.errors += query_errors_total_[i]->value();
  }
  report.p50_latency_ms = query_latency_ms_->Quantile(0.5);
  report.p95_latency_ms = query_latency_ms_->Quantile(0.95);
  report.p99_latency_ms = query_latency_ms_->Quantile(0.99);
  report.cost = cost_feedback_.snapshot();
  return report;
}

std::string TelemetryReport::ToString() const {
  std::ostringstream os;
  if (!enabled) {
    os << "telemetry disabled (" << layout_epochs << " layout epoch(s))\n";
    return os.str();
  }
  os << "queries " << queries << " (errors " << errors << "), latency p50 "
     << p50_latency_ms << " ms p95 " << p95_latency_ms << " ms p99 "
     << p99_latency_ms << " ms, layout epochs " << layout_epochs << "\n"
     << cost.ToString();
  return os.str();
}

Status Database::MoveTable(const std::string& name, StoreType store) {
  return ApplyLayout(name, TableLayout::SingleStore(store));
}

Status Database::ApplyLayout(const std::string& name,
                             const TableLayout& layout,
                             const std::vector<Encoding>& encodings) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_.Find(name));
  PhysicalOptions options = table->physical_options();
  if (!encodings.empty()) {
    options.column.column_encodings.assign(encodings.begin(),
                                           encodings.end());
  }
  // A layout without a column-store piece has no encoded segments: drop any
  // codec pins instead of carrying them along, so a later move back to the
  // column store re-enters the adaptive picker rather than resurrecting
  // codecs that were solved for an old layout or budget.
  if (!HasColumnStorePiece(layout)) {
    options.column.column_encodings.clear();
  }
  // No-op only when both the layout and the pinned codecs already match;
  // an encoding-only change still rematerializes (the re-encode happens at
  // the bulk-load merge).
  if (table->layout() == layout &&
      options.column.column_encodings ==
          table->physical_options().column.column_encodings) {
    return Status::OK();
  }
  HSDB_ASSIGN_OR_RETURN(std::unique_ptr<LogicalTable> rebuilt,
                        Rematerialize(*table, layout, options));
  HSDB_RETURN_IF_ERROR(catalog_.ReplaceTable(name, std::move(rebuilt)));
  ++layout_epoch_;
  if (TelemetryOn()) rematerializations_total_->Increment();
  return catalog_.UpdateStatistics(name);
}

}  // namespace hsdb
