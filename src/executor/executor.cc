#include "executor/executor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "executor/aggregate.h"
#include "executor/read_path.h"
#include "storage/scan_dispatch.h"
#include "telemetry/trace.h"

namespace hsdb {

namespace rp = readpath;

namespace {

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace

Result<QueryResult> Executor::Execute(const Query& query) {
  switch (KindOf(query)) {
    case QueryKind::kAggregation:
      return ExecuteAggregation(std::get<AggregationQuery>(query));
    case QueryKind::kSelect:
      return ExecuteSelect(std::get<SelectQuery>(query));
    case QueryKind::kInsert:
      return ExecuteInsert(std::get<InsertQuery>(query));
    case QueryKind::kUpdate:
      return ExecuteUpdate(std::get<UpdateQuery>(query));
    case QueryKind::kDelete:
      return ExecuteDelete(std::get<DeleteQuery>(query));
  }
  return Status::Internal("unreachable query kind");
}

Result<QueryResult> Executor::ExecuteSelect(const SelectQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.table));
  const Schema& schema = table->schema();
  for (ColumnId col : q.select_columns) {
    if (col >= schema.num_columns()) {
      return Status::InvalidArgument("select column out of range");
    }
  }
  std::vector<const PredicateTerm*> terms = rp::TermsForTable(q.predicate, 0);
  if (terms.size() != q.predicate.size()) {
    return Status::InvalidArgument("select predicate references other tables");
  }
  HSDB_RETURN_IF_ERROR(rp::ValidateTerms(schema, terms));

  QueryResult result;
  const size_t limit =
      q.limit.value_or(std::numeric_limits<size_t>::max());

  // Point fast path: single equality on a single-column primary key.
  if (schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0])) {
    telemetry::ScopedSpan scan_span("scan");
    Result<Row> row =
        table->GetByPk(PrimaryKey::Of(*q.predicate[0].range.lo));
    if (row.ok() && limit > 0) {
      result.rows.push_back(ProjectRow(*row, q.select_columns));
    }
    return result;
  }

  std::vector<ColumnId> needed = q.select_columns;
  for (const PredicateTerm* term : terms) {
    needed.push_back(term->column.column);
  }
  needed = rp::UniqueColumns(std::move(needed));

  telemetry::ScopedSpan scan_span("scan");
  for (size_t g = 0; g < table->groups().size(); ++g) {
    if (result.rows.size() >= limit) break;
    const RowGroup& group = table->groups()[g];
    if (const Fragment* cover = rp::CoveringFragment(group, needed)) {
      if (rp::UseParallelScan(parallel_, *cover, terms)) {
        rp::ParallelSelectCover(parallel_, *cover, terms, q.select_columns,
                                limit, /*prefiltered=*/nullptr, &result);
        continue;
      }
      Bitmap bm = rp::EvaluateOnFragment(*cover, terms);
      rp::SelectFromBitmap(*cover, bm, q.select_columns, limit, &result);
    } else {
      // Vertical-split slow path: resolve keys, then stitch projections.
      telemetry::ScopedSpan stitch_span("stitch");
      HSDB_ASSIGN_OR_RETURN(std::vector<PrimaryKey> pks,
                            rp::MatchingPksInGroup(group, terms));
      for (const PrimaryKey& pk : pks) {
        if (result.rows.size() >= limit) break;
        HSDB_ASSIGN_OR_RETURN(Row row, table->GetByPk(pk));
        result.rows.push_back(ProjectRow(row, q.select_columns));
      }
    }
  }
  return result;
}

Result<QueryResult> Executor::ExecuteInsert(const InsertQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.table));
  telemetry::ScopedSpan write_span("write");
  HSDB_RETURN_IF_ERROR(table->Insert(q.row));
  QueryResult result;
  result.affected_rows = 1;
  return result;
}

Result<QueryResult> Executor::ExecuteUpdate(const UpdateQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.table));
  const Schema& schema = table->schema();
  if (q.set_columns.size() != q.set_values.size()) {
    return Status::InvalidArgument("set columns/values arity mismatch");
  }
  std::vector<const PredicateTerm*> terms = rp::TermsForTable(q.predicate, 0);
  if (terms.size() != q.predicate.size()) {
    return Status::InvalidArgument("update predicate references other tables");
  }
  HSDB_RETURN_IF_ERROR(rp::ValidateTerms(schema, terms));

  QueryResult result;
  // Point fast path.
  if (schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0])) {
    Status s = table->UpdateByPk(PrimaryKey::Of(*q.predicate[0].range.lo),
                                 q.set_columns, q.set_values);
    if (s.ok()) {
      result.affected_rows = 1;
    } else if (s.code() != StatusCode::kNotFound) {
      return s;
    }
    return result;
  }

  std::vector<PrimaryKey> all_pks;
  {
    telemetry::ScopedSpan scan_span("scan");
    for (const RowGroup& group : table->groups()) {
      HSDB_ASSIGN_OR_RETURN(std::vector<PrimaryKey> pks,
                            rp::MatchingPksInGroup(group, terms));
      for (PrimaryKey& pk : pks) all_pks.push_back(std::move(pk));
    }
  }
  telemetry::ScopedSpan write_span("write");
  for (const PrimaryKey& pk : all_pks) {
    HSDB_RETURN_IF_ERROR(table->UpdateByPk(pk, q.set_columns, q.set_values));
    ++result.affected_rows;
  }
  return result;
}

Result<QueryResult> Executor::ExecuteDelete(const DeleteQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.table));
  std::vector<const PredicateTerm*> terms = rp::TermsForTable(q.predicate, 0);
  if (terms.size() != q.predicate.size()) {
    return Status::InvalidArgument("delete predicate references other tables");
  }
  HSDB_RETURN_IF_ERROR(rp::ValidateTerms(table->schema(), terms));

  QueryResult result;
  const Schema& schema = table->schema();
  if (schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0])) {
    Status s = table->DeleteByPk(PrimaryKey::Of(*q.predicate[0].range.lo));
    if (s.ok()) {
      result.affected_rows = 1;
    } else if (s.code() != StatusCode::kNotFound) {
      return s;
    }
    return result;
  }
  std::vector<PrimaryKey> all_pks;
  {
    telemetry::ScopedSpan scan_span("scan");
    for (const RowGroup& group : table->groups()) {
      HSDB_ASSIGN_OR_RETURN(std::vector<PrimaryKey> pks,
                            rp::MatchingPksInGroup(group, terms));
      for (PrimaryKey& pk : pks) all_pks.push_back(std::move(pk));
    }
  }
  telemetry::ScopedSpan write_span("write");
  for (const PrimaryKey& pk : all_pks) {
    HSDB_RETURN_IF_ERROR(table->DeleteByPk(pk));
    ++result.affected_rows;
  }
  return result;
}

Result<QueryResult> Executor::ExecuteAggregation(const AggregationQuery& q) {
  if (q.tables.empty()) {
    return Status::InvalidArgument("aggregation requires a table");
  }
  if (q.aggregates.empty()) {
    return Status::InvalidArgument("aggregation requires an aggregate");
  }
  const int num_tables = static_cast<int>(q.tables.size());
  auto check_ref = [&](const ColumnRef& ref) -> Status {
    if (ref.table_index < 0 || ref.table_index >= num_tables) {
      return Status::InvalidArgument("column ref table index out of range");
    }
    LogicalTable* t = catalog_->GetTable(q.tables[ref.table_index]);
    if (t == nullptr) {
      return Status::NotFound("table " + q.tables[ref.table_index] +
                              " does not exist");
    }
    if (ref.column >= t->schema().num_columns()) {
      return Status::InvalidArgument("column ref out of range");
    }
    return Status::OK();
  };
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount) {
      HSDB_RETURN_IF_ERROR(check_ref(agg.column));
      LogicalTable* t = catalog_->GetTable(q.tables[agg.column.table_index]);
      if (!IsNumeric(t->schema().column(agg.column.column).type)) {
        return Status::InvalidArgument("aggregate over non-numeric column");
      }
    }
  }
  for (const ColumnRef& ref : q.group_by) HSDB_RETURN_IF_ERROR(check_ref(ref));
  for (const PredicateTerm& term : q.predicate) {
    HSDB_RETURN_IF_ERROR(check_ref(term.column));
  }
  if (q.tables.size() == 1) {
    if (!q.joins.empty()) {
      return Status::InvalidArgument("joins require multiple tables");
    }
    return SingleTableAggregation(q);
  }
  // Star-join validation: exactly one edge from the fact to each dimension.
  if (q.joins.size() != q.tables.size() - 1) {
    return Status::InvalidArgument("star join requires one edge per dim");
  }
  std::vector<bool> joined(q.tables.size(), false);
  for (const JoinEdge& e : q.joins) {
    if (e.left_table != 0) {
      return Status::NotSupported("only star joins on the first table");
    }
    if (e.right_table <= 0 || e.right_table >= num_tables ||
        joined[e.right_table]) {
      return Status::InvalidArgument("invalid join edge");
    }
    joined[e.right_table] = true;
    HSDB_RETURN_IF_ERROR(check_ref({e.left_column, 0}));
    HSDB_RETURN_IF_ERROR(check_ref({e.right_column, e.right_table}));
  }
  return StarJoinAggregation(q);
}

Result<QueryResult> Executor::SingleTableAggregation(
    const AggregationQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.tables[0]));
  std::vector<const PredicateTerm*> terms = rp::TermsForTable(q.predicate, 0);
  const bool grouped = !q.group_by.empty();

  std::vector<AggState> totals(q.aggregates.size());
  GroupMap group_map;

  std::vector<ColumnId> needed;
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount) needed.push_back(agg.column.column);
  }
  for (const ColumnRef& ref : q.group_by) needed.push_back(ref.column);
  for (const PredicateTerm* term : terms) {
    needed.push_back(term->column.column);
  }
  needed = rp::UniqueColumns(std::move(needed));

  telemetry::ScopedSpan scan_span("scan");
  for (size_t g = 0; g < table->groups().size(); ++g) {
    const RowGroup& group = table->groups()[g];
    const Fragment* cover = rp::CoveringFragment(group, needed);
    if (cover != nullptr) {
      if (rp::UseParallelScan(parallel_, *cover, terms)) {
        rp::ParallelAggregateCover(parallel_, *cover, terms, q, grouped,
                                   /*prefiltered=*/nullptr, &totals,
                                   &group_map);
        continue;
      }
      Bitmap bm = rp::EvaluateOnFragment(*cover, terms);
      rp::AggregateFromBitmap(*cover, bm, q, grouped, &totals, &group_map);
    } else {
      // Spanning path: stitch full logical rows (vertical-partition join).
      telemetry::ScopedSpan stitch_span("stitch");
      table->ForEachRowInGroup(g, [&](const Row& row) {
        for (const PredicateTerm* term : terms) {
          if (!term->range.Contains(row[term->column.column])) return;
        }
        std::vector<AggState>* states = &totals;
        if (grouped) {
          GroupKey key;
          key.values.reserve(q.group_by.size());
          for (const ColumnRef& ref : q.group_by) {
            key.values.push_back(row[ref.column]);
          }
          states = &group_map
                        .try_emplace(std::move(key),
                                     std::vector<AggState>(
                                         q.aggregates.size()))
                        .first->second;
        }
        for (size_t i = 0; i < q.aggregates.size(); ++i) {
          const AggregateExpr& agg = q.aggregates[i];
          if (agg.fn == AggFn::kCount) {
            (*states)[i].AddCount(1.0);
          } else {
            (*states)[i].Add(row[agg.column.column].AsNumeric());
          }
        }
      });
    }
  }

  return rp::FinalizeAggregation(q, grouped, totals, group_map);
}

Result<QueryResult> Executor::StarJoinAggregation(const AggregationQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * fact, catalog_->Find(q.tables[0]));

  struct DimSide {
    int table_index;
    ColumnId fact_join_col;
    ColumnId dim_join_col;
    std::vector<ColumnId> needed;                       // dim logical columns
    std::unordered_map<ColumnId, size_t> needed_pos;    // -> index in needed
    std::unordered_map<Value, Row, ValueHasher> rows;   // join key -> values
  };
  std::vector<DimSide> dims;
  dims.reserve(q.joins.size());
  std::vector<int> dim_of_table(q.tables.size(), -1);

  for (const JoinEdge& e : q.joins) {
    DimSide dim;
    dim.table_index = e.right_table;
    dim.fact_join_col = e.left_column;
    dim.dim_join_col = e.right_column;
    dim_of_table[e.right_table] = static_cast<int>(dims.size());
    dims.push_back(std::move(dim));
  }
  auto need_dim_col = [&](const ColumnRef& ref) {
    if (ref.table_index == 0) return;
    DimSide& dim = dims[dim_of_table[ref.table_index]];
    if (dim.needed_pos.emplace(ref.column, dim.needed.size()).second) {
      dim.needed.push_back(ref.column);
    }
  };
  for (const ColumnRef& ref : q.group_by) need_dim_col(ref);
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount) need_dim_col(agg.column);
  }

  // Build dimension hash tables (predicates on the dimension applied here).
  {
    telemetry::ScopedSpan build_span("join_build");
    for (DimSide& dim : dims) {
      HSDB_ASSIGN_OR_RETURN(LogicalTable * dt,
                            catalog_->Find(q.tables[dim.table_index]));
      std::vector<const PredicateTerm*> dim_terms =
          rp::TermsForTable(q.predicate, dim.table_index);
      HSDB_RETURN_IF_ERROR(rp::ValidateTerms(dt->schema(), dim_terms));
      dt->ForEachRow([&](const Row& row) {
        for (const PredicateTerm* term : dim_terms) {
          if (!term->range.Contains(row[term->column.column])) return;
        }
        dim.rows.emplace(row[dim.dim_join_col], ProjectRow(row, dim.needed));
      });
    }
  }

  std::vector<const PredicateTerm*> fact_terms =
      rp::TermsForTable(q.predicate, 0);
  HSDB_RETURN_IF_ERROR(rp::ValidateTerms(fact->schema(), fact_terms));

  const bool grouped = !q.group_by.empty();
  std::vector<AggState> totals(q.aggregates.size());
  GroupMap group_map;
  std::vector<const Row*> dim_rows(dims.size());

  // Shared probe logic; `get` materializes a fact column value.
  auto probe_row = [&](auto&& get) {
    for (size_t d = 0; d < dims.size(); ++d) {
      auto it = dims[d].rows.find(get(dims[d].fact_join_col));
      if (it == dims[d].rows.end()) return;  // join miss
      dim_rows[d] = &it->second;
    }
    std::vector<AggState>* states = &totals;
    if (grouped) {
      GroupKey key;
      key.values.reserve(q.group_by.size());
      for (const ColumnRef& ref : q.group_by) {
        if (ref.table_index == 0) {
          key.values.push_back(get(ref.column));
        } else {
          const DimSide& dim = dims[dim_of_table[ref.table_index]];
          key.values.push_back(
              (*dim_rows[dim_of_table[ref.table_index]])[dim.needed_pos.at(
                  ref.column)]);
        }
      }
      states =
          &group_map
               .try_emplace(std::move(key),
                            std::vector<AggState>(q.aggregates.size()))
               .first->second;
    }
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      const AggregateExpr& agg = q.aggregates[i];
      if (agg.fn == AggFn::kCount) {
        (*states)[i].AddCount(1.0);
        continue;
      }
      double v;
      if (agg.column.table_index == 0) {
        v = get(agg.column.column).AsNumeric();
      } else {
        const DimSide& dim = dims[dim_of_table[agg.column.table_index]];
        v = (*dim_rows[dim_of_table[agg.column.table_index]])[dim.needed_pos
                .at(agg.column.column)]
                .AsNumeric();
      }
      (*states)[i].Add(v);
    }
  };

  // Fact columns the probe needs.
  std::vector<ColumnId> needed;
  for (const DimSide& dim : dims) needed.push_back(dim.fact_join_col);
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount && agg.column.table_index == 0) {
      needed.push_back(agg.column.column);
    }
  }
  for (const ColumnRef& ref : q.group_by) {
    if (ref.table_index == 0) needed.push_back(ref.column);
  }
  for (const PredicateTerm* term : fact_terms) {
    needed.push_back(term->column.column);
  }
  needed = rp::UniqueColumns(std::move(needed));

  telemetry::ScopedSpan probe_span("probe");
  for (size_t g = 0; g < fact->groups().size(); ++g) {
    const RowGroup& group = fact->groups()[g];
    if (const Fragment* cover = rp::CoveringFragment(group, needed)) {
      Bitmap bm = rp::EvaluateOnFragment(*cover, fact_terms);
      bm.ForEachSet([&](size_t rid) {
        probe_row([&](ColumnId col) {
          return cover->table->GetValue(rid, cover->FragColumn(col));
        });
      });
    } else {
      fact->ForEachRowInGroup(g, [&](const Row& row) {
        for (const PredicateTerm* term : fact_terms) {
          if (!term->range.Contains(row[term->column.column])) return;
        }
        probe_row([&](ColumnId col) { return row[col]; });
      });
    }
  }

  return rp::FinalizeAggregation(q, grouped, totals, group_map);
}

}  // namespace hsdb
