#include "executor/executor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "executor/aggregate.h"
#include "storage/scan_dispatch.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace hsdb {
namespace {

/// Rows per morsel of the parallel scan path. A multiple of 64 so that
/// morsel boundaries fall on bitmap word boundaries: each worker then writes
/// a disjoint word range of the shared selection bitmap, and results are
/// bit-identical for every thread count. Fixed (not derived from the thread
/// count) so that per-morsel work — and therefore merged output — is
/// independent of the degree of parallelism.
constexpr size_t kMorselRows = 16384;
static_assert(kMorselRows % 64 == 0, "morsels must be bitmap-word aligned");

size_t MorselCount(size_t n) { return (n + kMorselRows - 1) / kMorselRows; }

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

std::vector<const PredicateTerm*> TermsForTable(const Predicate& predicate,
                                                int table_index) {
  std::vector<const PredicateTerm*> terms;
  for (const PredicateTerm& term : predicate) {
    if (term.column.table_index == table_index) terms.push_back(&term);
  }
  return terms;
}

Status ValidateTerms(const Schema& schema,
                     const std::vector<const PredicateTerm*>& terms) {
  for (const PredicateTerm* term : terms) {
    if (term->column.column >= schema.num_columns()) {
      return Status::InvalidArgument("predicate column out of range");
    }
    if (!term->range.lo.has_value() && !term->range.hi.has_value()) {
      return Status::InvalidArgument("unbounded predicate term");
    }
  }
  return Status::OK();
}

/// Evaluates a conjunction of terms on one fragment. All term columns must
/// be contained in the fragment. Uses a row-store sorted index to seed the
/// bitmap when one is available for a term's column.
Bitmap EvaluateOnFragment(const Fragment& frag,
                          const std::vector<const PredicateTerm*>& terms) {
  telemetry::ScopedSpan span("predicate");
  const PhysicalTable& table = *frag.table;
  if (table.store() == StoreType::kRow) {
    const auto& rs = static_cast<const RowTable&>(table);
    for (size_t i = 0; i < terms.size(); ++i) {
      ColumnId fc = frag.FragColumn(terms[i]->column.column);
      if (!rs.HasSortedIndex(fc)) continue;
      Result<Bitmap> seeded = rs.IndexFilter(fc, terms[i]->range);
      if (!seeded.ok()) continue;
      Bitmap bm = std::move(seeded).value();
      for (size_t j = 0; j < terms.size(); ++j) {
        if (j == i) continue;
        table.FilterRange(frag.FragColumn(terms[j]->column.column),
                          terms[j]->range, &bm);
      }
      return bm;
    }
  }
  Bitmap bm = table.live_bitmap();
  for (const PredicateTerm* term : terms) {
    table.FilterRange(frag.FragColumn(term->column.column), term->range, &bm);
  }
  return bm;
}

/// Whether the morsel-parallel scan path applies to this fragment: a pool
/// is installed, the fragment spans more than one morsel, and no row-store
/// sorted index would seed the bitmap (the index path is already
/// sub-linear; morselizing it would only add overhead).
bool UseParallelScan(const ParallelContext& ctx, const Fragment& frag,
                     const std::vector<const PredicateTerm*>& terms) {
  if (ctx.pool == nullptr) return false;
  if (frag.table->slot_count() <= kMorselRows) return false;
  if (frag.table->store() == StoreType::kRow) {
    const auto& rs = static_cast<const RowTable&>(*frag.table);
    for (const PredicateTerm* term : terms) {
      if (rs.HasSortedIndex(frag.FragColumn(term->column.column))) {
        return false;
      }
    }
  }
  return true;
}

/// Telemetry for one parallel dispatch: total morsels produced and the
/// worker-queue depth at dispatch time (pending tasks already queued plus
/// this scan's morsels).
void NoteMorsels(const ParallelContext& ctx, size_t morsels) {
  if (ctx.morsels_total != nullptr) ctx.morsels_total->Increment(morsels);
  if (ctx.queue_depth != nullptr) {
    ctx.queue_depth->Set(
        static_cast<double>(ctx.pool->queue_depth() + morsels));
  }
}

/// Narrows morsel [begin, end) of the shared bitmap by every term. Each
/// morsel touches only its own bitmap words (begin is 64-aligned), so
/// concurrent calls for disjoint morsels are safe.
void FilterMorsel(const Fragment& frag,
                  const std::vector<const PredicateTerm*>& terms,
                  size_t begin, size_t end, Bitmap* bm) {
  for (const PredicateTerm* term : terms) {
    frag.table->FilterRangeSlice(frag.FragColumn(term->column.column),
                                 term->range, begin, end, bm);
  }
}

/// Morsel-parallel SELECT over a covering fragment: workers filter and
/// materialize per-morsel row batches; the coordinator concatenates them in
/// morsel order, which makes the output bit-identical to the serial path
/// for every thread count.
void ParallelSelectCover(const ParallelContext& ctx, const Fragment& cover,
                         const std::vector<const PredicateTerm*>& terms,
                         const std::vector<ColumnId>& select_columns,
                         size_t limit, QueryResult* result) {
  telemetry::ScopedSpan par_span("scan_parallel");
  const size_t n = cover.table->slot_count();
  const size_t morsels = MorselCount(n);
  NoteMorsels(ctx, morsels);
  Bitmap bm = cover.table->live_bitmap();
  std::vector<std::vector<Row>> batches(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    const size_t begin = m * kMorselRows;
    const size_t end = std::min(begin + kMorselRows, n);
    FilterMorsel(cover, terms, begin, end, &bm);
    std::vector<Row>& rows = batches[m];
    bm.ForEachSetInRange(begin, end, [&](size_t rid) {
      if (rows.size() >= limit) return;  // no morsel needs more than `limit`
      Row row;
      row.reserve(select_columns.size());
      for (ColumnId col : select_columns) {
        row.push_back(cover.table->GetValue(rid, cover.FragColumn(col)));
      }
      rows.push_back(std::move(row));
    });
  });
  for (std::vector<Row>& rows : batches) {
    for (Row& row : rows) {
      if (result->rows.size() >= limit) return;
      result->rows.push_back(std::move(row));
    }
  }
}

/// Per-morsel partial aggregates, merged by the coordinator in morsel order.
struct MorselAgg {
  std::vector<AggState> totals;
  GroupMap groups;
};

/// Morsel-parallel aggregation over a covering fragment. Ungrouped: each
/// worker folds its morsel into a private AggState vector. Grouped: each
/// worker builds a private GroupMap. The coordinator merges partials in
/// morsel order, so results are deterministic for every thread count
/// (floating-point sums still differ from the serial evaluation order when
/// values are not exactly representable).
void ParallelAggregateCover(const ParallelContext& ctx, const Fragment& cover,
                            const std::vector<const PredicateTerm*>& terms,
                            const AggregationQuery& q, bool grouped,
                            std::vector<AggState>* totals,
                            GroupMap* group_map) {
  telemetry::ScopedSpan par_span("scan_parallel");
  const size_t n = cover.table->slot_count();
  const size_t morsels = MorselCount(n);
  NoteMorsels(ctx, morsels);
  Bitmap bm = cover.table->live_bitmap();
  std::vector<MorselAgg> partials(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    const size_t begin = m * kMorselRows;
    const size_t end = std::min(begin + kMorselRows, n);
    FilterMorsel(cover, terms, begin, end, &bm);
    MorselAgg& partial = partials[m];
    if (!grouped) {
      partial.totals.assign(q.aggregates.size(), AggState{});
      for (size_t i = 0; i < q.aggregates.size(); ++i) {
        const AggregateExpr& agg = q.aggregates[i];
        if (agg.fn == AggFn::kCount) {
          partial.totals[i].AddCount(
              static_cast<double>(bm.CountInRange(begin, end)));
        } else {
          ForEachNumericInRange(
              *cover.table, cover.FragColumn(agg.column.column), bm, begin,
              end, [&](RowId, double v) { partial.totals[i].Add(v); });
        }
      }
      return;
    }
    bm.ForEachSetInRange(begin, end, [&](size_t rid) {
      GroupKey key;
      key.values.reserve(q.group_by.size());
      for (const ColumnRef& ref : q.group_by) {
        key.values.push_back(
            cover.table->GetValue(rid, cover.FragColumn(ref.column)));
      }
      auto& states =
          partial.groups
              .try_emplace(std::move(key),
                           std::vector<AggState>(q.aggregates.size()))
              .first->second;
      for (size_t i = 0; i < q.aggregates.size(); ++i) {
        const AggregateExpr& agg = q.aggregates[i];
        if (agg.fn == AggFn::kCount) {
          states[i].AddCount(1.0);
        } else {
          states[i].Add(
              cover.table->GetValue(rid, cover.FragColumn(agg.column.column))
                  .AsNumeric());
        }
      }
    });
  });
  for (MorselAgg& partial : partials) {
    if (!grouped) {
      for (size_t i = 0; i < partial.totals.size(); ++i) {
        (*totals)[i].Merge(partial.totals[i]);
      }
      continue;
    }
    for (auto& [key, states] : partial.groups) {
      auto& dst =
          group_map
              ->try_emplace(key, std::vector<AggState>(q.aggregates.size()))
              .first->second;
      for (size_t i = 0; i < states.size(); ++i) dst[i].Merge(states[i]);
    }
  }
}

const Fragment* CoveringFragment(const RowGroup& group,
                                 const std::vector<ColumnId>& columns) {
  for (const Fragment& frag : group.fragments) {
    if (frag.Covers(columns)) return &frag;
  }
  return nullptr;
}

PrimaryKey PkOfFragmentRow(const Fragment& frag, RowId rid) {
  const Schema& fs = frag.table->schema();
  PrimaryKey pk;
  pk.values.reserve(fs.primary_key().size());
  for (ColumnId c : fs.primary_key()) {
    pk.values.push_back(frag.table->GetValue(rid, c));
  }
  return pk;
}

/// Primary keys of the group's rows matching the predicate. Handles the
/// vertical-split case where no single fragment covers all predicate
/// columns by intersecting per-fragment key sets (the cost of queries that
/// span vertical partitions).
Result<std::vector<PrimaryKey>> MatchingPksInGroup(
    const RowGroup& group, const std::vector<const PredicateTerm*>& terms) {
  std::vector<PrimaryKey> out;
  if (terms.empty()) {
    const Fragment& lead = group.fragments.front();
    lead.table->live_bitmap().ForEachSet(
        [&](size_t rid) { out.push_back(PkOfFragmentRow(lead, rid)); });
    return out;
  }
  std::vector<ColumnId> cols;
  cols.reserve(terms.size());
  for (const PredicateTerm* term : terms) cols.push_back(term->column.column);
  if (const Fragment* cover = CoveringFragment(group, cols)) {
    Bitmap bm = EvaluateOnFragment(*cover, terms);
    bm.ForEachSet(
        [&](size_t rid) { out.push_back(PkOfFragmentRow(*cover, rid)); });
    return out;
  }
  // Spanning path: assign every term to the first fragment holding its
  // column, evaluate per fragment, intersect the key sets.
  std::vector<const PredicateTerm*> remaining = terms;
  std::vector<std::unordered_set<PrimaryKey, PrimaryKeyHash>> sets;
  for (const Fragment& frag : group.fragments) {
    std::vector<const PredicateTerm*> mine;
    std::vector<const PredicateTerm*> rest;
    for (const PredicateTerm* term : remaining) {
      if (frag.Contains(term->column.column)) {
        mine.push_back(term);
      } else {
        rest.push_back(term);
      }
    }
    remaining = std::move(rest);
    if (mine.empty()) continue;
    Bitmap bm = EvaluateOnFragment(frag, mine);
    std::unordered_set<PrimaryKey, PrimaryKeyHash> keys;
    bm.ForEachSet(
        [&](size_t rid) { keys.insert(PkOfFragmentRow(frag, rid)); });
    sets.push_back(std::move(keys));
  }
  if (!remaining.empty()) {
    return Status::InvalidArgument("predicate column not stored in any "
                                   "fragment");
  }
  // Intersect, starting from the smallest set.
  std::sort(sets.begin(), sets.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  for (const PrimaryKey& pk : sets.front()) {
    bool in_all = true;
    for (size_t s = 1; s < sets.size(); ++s) {
      if (sets[s].find(pk) == sets[s].end()) {
        in_all = false;
        break;
      }
    }
    if (in_all) out.push_back(pk);
  }
  return out;
}

std::vector<ColumnId> UniqueColumns(std::vector<ColumnId> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

}  // namespace

Result<QueryResult> Executor::Execute(const Query& query) {
  switch (KindOf(query)) {
    case QueryKind::kAggregation:
      return ExecuteAggregation(std::get<AggregationQuery>(query));
    case QueryKind::kSelect:
      return ExecuteSelect(std::get<SelectQuery>(query));
    case QueryKind::kInsert:
      return ExecuteInsert(std::get<InsertQuery>(query));
    case QueryKind::kUpdate:
      return ExecuteUpdate(std::get<UpdateQuery>(query));
    case QueryKind::kDelete:
      return ExecuteDelete(std::get<DeleteQuery>(query));
  }
  return Status::Internal("unreachable query kind");
}

Result<QueryResult> Executor::ExecuteSelect(const SelectQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.table));
  const Schema& schema = table->schema();
  for (ColumnId col : q.select_columns) {
    if (col >= schema.num_columns()) {
      return Status::InvalidArgument("select column out of range");
    }
  }
  std::vector<const PredicateTerm*> terms = TermsForTable(q.predicate, 0);
  if (terms.size() != q.predicate.size()) {
    return Status::InvalidArgument("select predicate references other tables");
  }
  HSDB_RETURN_IF_ERROR(ValidateTerms(schema, terms));

  QueryResult result;
  const size_t limit =
      q.limit.value_or(std::numeric_limits<size_t>::max());

  // Point fast path: single equality on a single-column primary key.
  if (schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0])) {
    telemetry::ScopedSpan scan_span("scan");
    Result<Row> row =
        table->GetByPk(PrimaryKey::Of(*q.predicate[0].range.lo));
    if (row.ok() && limit > 0) {
      result.rows.push_back(ProjectRow(*row, q.select_columns));
    }
    return result;
  }

  std::vector<ColumnId> needed = q.select_columns;
  for (const PredicateTerm* term : terms) {
    needed.push_back(term->column.column);
  }
  needed = UniqueColumns(std::move(needed));

  telemetry::ScopedSpan scan_span("scan");
  for (size_t g = 0; g < table->groups().size(); ++g) {
    if (result.rows.size() >= limit) break;
    const RowGroup& group = table->groups()[g];
    if (const Fragment* cover = CoveringFragment(group, needed)) {
      if (UseParallelScan(parallel_, *cover, terms)) {
        ParallelSelectCover(parallel_, *cover, terms, q.select_columns, limit,
                            &result);
        continue;
      }
      Bitmap bm = EvaluateOnFragment(*cover, terms);
      bm.ForEachSet([&](size_t rid) {
        if (result.rows.size() >= limit) return;
        Row row;
        row.reserve(q.select_columns.size());
        for (ColumnId col : q.select_columns) {
          row.push_back(cover->table->GetValue(rid, cover->FragColumn(col)));
        }
        result.rows.push_back(std::move(row));
      });
    } else {
      // Vertical-split slow path: resolve keys, then stitch projections.
      telemetry::ScopedSpan stitch_span("stitch");
      HSDB_ASSIGN_OR_RETURN(std::vector<PrimaryKey> pks,
                            MatchingPksInGroup(group, terms));
      for (const PrimaryKey& pk : pks) {
        if (result.rows.size() >= limit) break;
        HSDB_ASSIGN_OR_RETURN(Row row, table->GetByPk(pk));
        result.rows.push_back(ProjectRow(row, q.select_columns));
      }
    }
  }
  return result;
}

Result<QueryResult> Executor::ExecuteInsert(const InsertQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.table));
  telemetry::ScopedSpan write_span("write");
  HSDB_RETURN_IF_ERROR(table->Insert(q.row));
  QueryResult result;
  result.affected_rows = 1;
  return result;
}

Result<QueryResult> Executor::ExecuteUpdate(const UpdateQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.table));
  const Schema& schema = table->schema();
  if (q.set_columns.size() != q.set_values.size()) {
    return Status::InvalidArgument("set columns/values arity mismatch");
  }
  std::vector<const PredicateTerm*> terms = TermsForTable(q.predicate, 0);
  if (terms.size() != q.predicate.size()) {
    return Status::InvalidArgument("update predicate references other tables");
  }
  HSDB_RETURN_IF_ERROR(ValidateTerms(schema, terms));

  QueryResult result;
  // Point fast path.
  if (schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0])) {
    Status s = table->UpdateByPk(PrimaryKey::Of(*q.predicate[0].range.lo),
                                 q.set_columns, q.set_values);
    if (s.ok()) {
      result.affected_rows = 1;
    } else if (s.code() != StatusCode::kNotFound) {
      return s;
    }
    return result;
  }

  std::vector<PrimaryKey> all_pks;
  {
    telemetry::ScopedSpan scan_span("scan");
    for (const RowGroup& group : table->groups()) {
      HSDB_ASSIGN_OR_RETURN(std::vector<PrimaryKey> pks,
                            MatchingPksInGroup(group, terms));
      for (PrimaryKey& pk : pks) all_pks.push_back(std::move(pk));
    }
  }
  telemetry::ScopedSpan write_span("write");
  for (const PrimaryKey& pk : all_pks) {
    HSDB_RETURN_IF_ERROR(table->UpdateByPk(pk, q.set_columns, q.set_values));
    ++result.affected_rows;
  }
  return result;
}

Result<QueryResult> Executor::ExecuteDelete(const DeleteQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.table));
  std::vector<const PredicateTerm*> terms = TermsForTable(q.predicate, 0);
  if (terms.size() != q.predicate.size()) {
    return Status::InvalidArgument("delete predicate references other tables");
  }
  HSDB_RETURN_IF_ERROR(ValidateTerms(table->schema(), terms));

  QueryResult result;
  const Schema& schema = table->schema();
  if (schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0])) {
    Status s = table->DeleteByPk(PrimaryKey::Of(*q.predicate[0].range.lo));
    if (s.ok()) {
      result.affected_rows = 1;
    } else if (s.code() != StatusCode::kNotFound) {
      return s;
    }
    return result;
  }
  std::vector<PrimaryKey> all_pks;
  {
    telemetry::ScopedSpan scan_span("scan");
    for (const RowGroup& group : table->groups()) {
      HSDB_ASSIGN_OR_RETURN(std::vector<PrimaryKey> pks,
                            MatchingPksInGroup(group, terms));
      for (PrimaryKey& pk : pks) all_pks.push_back(std::move(pk));
    }
  }
  telemetry::ScopedSpan write_span("write");
  for (const PrimaryKey& pk : all_pks) {
    HSDB_RETURN_IF_ERROR(table->DeleteByPk(pk));
    ++result.affected_rows;
  }
  return result;
}

Result<QueryResult> Executor::ExecuteAggregation(const AggregationQuery& q) {
  if (q.tables.empty()) {
    return Status::InvalidArgument("aggregation requires a table");
  }
  if (q.aggregates.empty()) {
    return Status::InvalidArgument("aggregation requires an aggregate");
  }
  const int num_tables = static_cast<int>(q.tables.size());
  auto check_ref = [&](const ColumnRef& ref) -> Status {
    if (ref.table_index < 0 || ref.table_index >= num_tables) {
      return Status::InvalidArgument("column ref table index out of range");
    }
    LogicalTable* t = catalog_->GetTable(q.tables[ref.table_index]);
    if (t == nullptr) {
      return Status::NotFound("table " + q.tables[ref.table_index] +
                              " does not exist");
    }
    if (ref.column >= t->schema().num_columns()) {
      return Status::InvalidArgument("column ref out of range");
    }
    return Status::OK();
  };
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount) {
      HSDB_RETURN_IF_ERROR(check_ref(agg.column));
      LogicalTable* t = catalog_->GetTable(q.tables[agg.column.table_index]);
      if (!IsNumeric(t->schema().column(agg.column.column).type)) {
        return Status::InvalidArgument("aggregate over non-numeric column");
      }
    }
  }
  for (const ColumnRef& ref : q.group_by) HSDB_RETURN_IF_ERROR(check_ref(ref));
  for (const PredicateTerm& term : q.predicate) {
    HSDB_RETURN_IF_ERROR(check_ref(term.column));
  }
  if (q.tables.size() == 1) {
    if (!q.joins.empty()) {
      return Status::InvalidArgument("joins require multiple tables");
    }
    return SingleTableAggregation(q);
  }
  // Star-join validation: exactly one edge from the fact to each dimension.
  if (q.joins.size() != q.tables.size() - 1) {
    return Status::InvalidArgument("star join requires one edge per dim");
  }
  std::vector<bool> joined(q.tables.size(), false);
  for (const JoinEdge& e : q.joins) {
    if (e.left_table != 0) {
      return Status::NotSupported("only star joins on the first table");
    }
    if (e.right_table <= 0 || e.right_table >= num_tables ||
        joined[e.right_table]) {
      return Status::InvalidArgument("invalid join edge");
    }
    joined[e.right_table] = true;
    HSDB_RETURN_IF_ERROR(check_ref({e.left_column, 0}));
    HSDB_RETURN_IF_ERROR(check_ref({e.right_column, e.right_table}));
  }
  return StarJoinAggregation(q);
}

Result<QueryResult> Executor::SingleTableAggregation(
    const AggregationQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * table, catalog_->Find(q.tables[0]));
  std::vector<const PredicateTerm*> terms = TermsForTable(q.predicate, 0);
  const bool grouped = !q.group_by.empty();

  std::vector<AggState> totals(q.aggregates.size());
  GroupMap group_map;

  std::vector<ColumnId> needed;
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount) needed.push_back(agg.column.column);
  }
  for (const ColumnRef& ref : q.group_by) needed.push_back(ref.column);
  for (const PredicateTerm* term : terms) {
    needed.push_back(term->column.column);
  }
  needed = UniqueColumns(std::move(needed));

  telemetry::ScopedSpan scan_span("scan");
  for (size_t g = 0; g < table->groups().size(); ++g) {
    const RowGroup& group = table->groups()[g];
    const Fragment* cover = CoveringFragment(group, needed);
    if (cover != nullptr) {
      if (UseParallelScan(parallel_, *cover, terms)) {
        ParallelAggregateCover(parallel_, *cover, terms, q, grouped, &totals,
                               &group_map);
        continue;
      }
      Bitmap bm = EvaluateOnFragment(*cover, terms);
      telemetry::ScopedSpan decode_span("decode");
      if (!grouped) {
        for (size_t i = 0; i < q.aggregates.size(); ++i) {
          const AggregateExpr& agg = q.aggregates[i];
          if (agg.fn == AggFn::kCount) {
            totals[i].AddCount(static_cast<double>(bm.Count()));
          } else {
            ForEachNumericIn(*cover->table,
                             cover->FragColumn(agg.column.column), &bm,
                             [&](RowId, double v) { totals[i].Add(v); });
          }
        }
      } else {
        bm.ForEachSet([&](size_t rid) {
          GroupKey key;
          key.values.reserve(q.group_by.size());
          for (const ColumnRef& ref : q.group_by) {
            key.values.push_back(
                cover->table->GetValue(rid, cover->FragColumn(ref.column)));
          }
          auto& states =
              group_map
                  .try_emplace(std::move(key),
                               std::vector<AggState>(q.aggregates.size()))
                  .first->second;
          for (size_t i = 0; i < q.aggregates.size(); ++i) {
            const AggregateExpr& agg = q.aggregates[i];
            if (agg.fn == AggFn::kCount) {
              states[i].AddCount(1.0);
            } else {
              states[i].Add(
                  cover->table
                      ->GetValue(rid, cover->FragColumn(agg.column.column))
                      .AsNumeric());
            }
          }
        });
      }
    } else {
      // Spanning path: stitch full logical rows (vertical-partition join).
      telemetry::ScopedSpan stitch_span("stitch");
      table->ForEachRowInGroup(g, [&](const Row& row) {
        for (const PredicateTerm* term : terms) {
          if (!term->range.Contains(row[term->column.column])) return;
        }
        std::vector<AggState>* states = &totals;
        if (grouped) {
          GroupKey key;
          key.values.reserve(q.group_by.size());
          for (const ColumnRef& ref : q.group_by) {
            key.values.push_back(row[ref.column]);
          }
          states = &group_map
                        .try_emplace(std::move(key),
                                     std::vector<AggState>(
                                         q.aggregates.size()))
                        .first->second;
        }
        for (size_t i = 0; i < q.aggregates.size(); ++i) {
          const AggregateExpr& agg = q.aggregates[i];
          if (agg.fn == AggFn::kCount) {
            (*states)[i].AddCount(1.0);
          } else {
            (*states)[i].Add(row[agg.column.column].AsNumeric());
          }
        }
      });
    }
  }

  QueryResult result;
  if (!grouped) {
    result.aggregates.reserve(q.aggregates.size());
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      result.aggregates.push_back(totals[i].Finalize(q.aggregates[i].fn));
    }
  } else {
    result.rows.reserve(group_map.size());
    for (const auto& [key, states] : group_map) {
      Row row = key.values;
      for (size_t i = 0; i < q.aggregates.size(); ++i) {
        row.push_back(Value(states[i].Finalize(q.aggregates[i].fn)));
      }
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

Result<QueryResult> Executor::StarJoinAggregation(const AggregationQuery& q) {
  HSDB_ASSIGN_OR_RETURN(LogicalTable * fact, catalog_->Find(q.tables[0]));

  struct DimSide {
    int table_index;
    ColumnId fact_join_col;
    ColumnId dim_join_col;
    std::vector<ColumnId> needed;                       // dim logical columns
    std::unordered_map<ColumnId, size_t> needed_pos;    // -> index in needed
    std::unordered_map<Value, Row, ValueHasher> rows;   // join key -> values
  };
  std::vector<DimSide> dims;
  dims.reserve(q.joins.size());
  std::vector<int> dim_of_table(q.tables.size(), -1);

  for (const JoinEdge& e : q.joins) {
    DimSide dim;
    dim.table_index = e.right_table;
    dim.fact_join_col = e.left_column;
    dim.dim_join_col = e.right_column;
    dim_of_table[e.right_table] = static_cast<int>(dims.size());
    dims.push_back(std::move(dim));
  }
  auto need_dim_col = [&](const ColumnRef& ref) {
    if (ref.table_index == 0) return;
    DimSide& dim = dims[dim_of_table[ref.table_index]];
    if (dim.needed_pos.emplace(ref.column, dim.needed.size()).second) {
      dim.needed.push_back(ref.column);
    }
  };
  for (const ColumnRef& ref : q.group_by) need_dim_col(ref);
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount) need_dim_col(agg.column);
  }

  // Build dimension hash tables (predicates on the dimension applied here).
  {
    telemetry::ScopedSpan build_span("join_build");
    for (DimSide& dim : dims) {
      HSDB_ASSIGN_OR_RETURN(LogicalTable * dt,
                            catalog_->Find(q.tables[dim.table_index]));
      std::vector<const PredicateTerm*> dim_terms =
          TermsForTable(q.predicate, dim.table_index);
      HSDB_RETURN_IF_ERROR(ValidateTerms(dt->schema(), dim_terms));
      dt->ForEachRow([&](const Row& row) {
        for (const PredicateTerm* term : dim_terms) {
          if (!term->range.Contains(row[term->column.column])) return;
        }
        dim.rows.emplace(row[dim.dim_join_col], ProjectRow(row, dim.needed));
      });
    }
  }

  std::vector<const PredicateTerm*> fact_terms = TermsForTable(q.predicate, 0);
  HSDB_RETURN_IF_ERROR(ValidateTerms(fact->schema(), fact_terms));

  const bool grouped = !q.group_by.empty();
  std::vector<AggState> totals(q.aggregates.size());
  GroupMap group_map;
  std::vector<const Row*> dim_rows(dims.size());

  // Shared probe logic; `get` materializes a fact column value.
  auto probe_row = [&](auto&& get) {
    for (size_t d = 0; d < dims.size(); ++d) {
      auto it = dims[d].rows.find(get(dims[d].fact_join_col));
      if (it == dims[d].rows.end()) return;  // join miss
      dim_rows[d] = &it->second;
    }
    std::vector<AggState>* states = &totals;
    if (grouped) {
      GroupKey key;
      key.values.reserve(q.group_by.size());
      for (const ColumnRef& ref : q.group_by) {
        if (ref.table_index == 0) {
          key.values.push_back(get(ref.column));
        } else {
          const DimSide& dim = dims[dim_of_table[ref.table_index]];
          key.values.push_back(
              (*dim_rows[dim_of_table[ref.table_index]])[dim.needed_pos.at(
                  ref.column)]);
        }
      }
      states =
          &group_map
               .try_emplace(std::move(key),
                            std::vector<AggState>(q.aggregates.size()))
               .first->second;
    }
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      const AggregateExpr& agg = q.aggregates[i];
      if (agg.fn == AggFn::kCount) {
        (*states)[i].AddCount(1.0);
        continue;
      }
      double v;
      if (agg.column.table_index == 0) {
        v = get(agg.column.column).AsNumeric();
      } else {
        const DimSide& dim = dims[dim_of_table[agg.column.table_index]];
        v = (*dim_rows[dim_of_table[agg.column.table_index]])[dim.needed_pos
                .at(agg.column.column)]
                .AsNumeric();
      }
      (*states)[i].Add(v);
    }
  };

  // Fact columns the probe needs.
  std::vector<ColumnId> needed;
  for (const DimSide& dim : dims) needed.push_back(dim.fact_join_col);
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount && agg.column.table_index == 0) {
      needed.push_back(agg.column.column);
    }
  }
  for (const ColumnRef& ref : q.group_by) {
    if (ref.table_index == 0) needed.push_back(ref.column);
  }
  for (const PredicateTerm* term : fact_terms) {
    needed.push_back(term->column.column);
  }
  needed = UniqueColumns(std::move(needed));

  telemetry::ScopedSpan probe_span("probe");
  for (size_t g = 0; g < fact->groups().size(); ++g) {
    const RowGroup& group = fact->groups()[g];
    if (const Fragment* cover = CoveringFragment(group, needed)) {
      Bitmap bm = EvaluateOnFragment(*cover, fact_terms);
      bm.ForEachSet([&](size_t rid) {
        probe_row([&](ColumnId col) {
          return cover->table->GetValue(rid, cover->FragColumn(col));
        });
      });
    } else {
      fact->ForEachRowInGroup(g, [&](const Row& row) {
        for (const PredicateTerm* term : fact_terms) {
          if (!term->range.Contains(row[term->column.column])) return;
        }
        probe_row([&](ColumnId col) { return row[col]; });
      });
    }
  }

  QueryResult result;
  if (!grouped) {
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      result.aggregates.push_back(totals[i].Finalize(q.aggregates[i].fn));
    }
  } else {
    result.rows.reserve(group_map.size());
    for (const auto& [key, states] : group_map) {
      Row row = key.values;
      for (size_t i = 0; i < q.aggregates.size(); ++i) {
        row.push_back(Value(states[i].Finalize(q.aggregates[i].fn)));
      }
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

}  // namespace hsdb
