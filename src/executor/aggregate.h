// Aggregation state machinery: per-aggregate accumulators and the hash
// group-by table.
#ifndef HSDB_EXECUTOR_AGGREGATE_H_
#define HSDB_EXECUTOR_AGGREGATE_H_

#include <limits>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/row.h"
#include "executor/query.h"

namespace hsdb {

/// Accumulator covering every supported aggregate function; partials from
/// different partition pieces combine with Merge (how the executor unions
/// horizontal partitions).
struct AggState {
  double sum = 0.0;
  double count = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    sum += v;
    count += 1.0;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  /// COUNT-only bulk accumulation (no per-row values needed).
  void AddCount(double n) { count += n; }

  void Merge(const AggState& other) {
    sum += other.sum;
    count += other.count;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  double Finalize(AggFn fn) const {
    switch (fn) {
      case AggFn::kSum:
        return sum;
      case AggFn::kAvg:
        return count == 0.0 ? 0.0 : sum / count;
      case AggFn::kMin:
        return count == 0.0 ? 0.0 : min;
      case AggFn::kMax:
        return count == 0.0 ? 0.0 : max;
      case AggFn::kCount:
        return count;
    }
    return 0.0;
  }
};

/// Group-by key: the materialized grouping values of one row.
struct GroupKey {
  Row values;

  bool operator==(const GroupKey& o) const {
    if (values.size() != o.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!(values[i] == o.values[i])) return false;
    }
    return true;
  }
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    size_t h = 0x2545f4914f6cdd1dull;
    for (const Value& v : k.values) h = HashCombine(h, v.Hash());
    return h;
  }
};

/// Hash aggregation table: group key -> one AggState per aggregate
/// expression.
using GroupMap =
    std::unordered_map<GroupKey, std::vector<AggState>, GroupKeyHash>;

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_AGGREGATE_H_
