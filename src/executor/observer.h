// QueryObserver: hook through which the workload layer records extended
// workload statistics (the paper's online mode input) without the executor
// depending on it.
#ifndef HSDB_EXECUTOR_OBSERVER_H_
#define HSDB_EXECUTOR_OBSERVER_H_

#include "executor/query.h"
#include "executor/result.h"

namespace hsdb {

class QueryObserver {
 public:
  virtual ~QueryObserver() = default;

  /// Called after every successful query execution with the executed query
  /// and its (timed) result.
  virtual void OnQuery(const Query& query, const QueryResult& result) = 0;
};

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_OBSERVER_H_
