// QueryObserver: hook through which the workload layer records extended
// workload statistics (the paper's online mode input) without the executor
// depending on it.
#ifndef HSDB_EXECUTOR_OBSERVER_H_
#define HSDB_EXECUTOR_OBSERVER_H_

#include "common/status.h"
#include "executor/query.h"
#include "executor/result.h"

namespace hsdb {

class QueryObserver {
 public:
  virtual ~QueryObserver() = default;

  /// Called after every successful query execution with the executed query
  /// and its (timed) result.
  virtual void OnQuery(const Query& query, const QueryResult& result) = 0;

  /// Called when a query fails to execute, with the error the executor
  /// returned. Default no-op so observers that only care about the
  /// successful stream (the workload recorder) are unaffected — but failed
  /// queries are observable, not silently dropped.
  virtual void OnQueryError(const Query& query, const Status& status) {
    (void)query;
    (void)status;
  }
};

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_OBSERVER_H_
