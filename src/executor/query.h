// The structured query model. The engine deliberately has no SQL parser —
// workloads are sequences of these descriptors, which carry exactly the
// query characteristics the storage advisor's cost model consumes
// (query type, aggregates, grouping, selectivity, affected columns/rows).
#ifndef HSDB_EXECUTOR_QUERY_H_
#define HSDB_EXECUTOR_QUERY_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/row.h"
#include "storage/value_range.h"

namespace hsdb {

/// Aggregation functions supported by the engine and costed by the advisor.
enum class AggFn : uint8_t { kSum = 0, kAvg, kMin, kMax, kCount };
inline constexpr int kNumAggFns = 5;
std::string_view AggFnName(AggFn fn);

/// Reference to a column of one of the query's tables (index into the
/// query's table list; 0 for single-table queries).
struct ColumnRef {
  ColumnId column = 0;
  int table_index = 0;

  bool operator==(const ColumnRef& o) const {
    return column == o.column && table_index == o.table_index;
  }
};

/// One aggregate expression, e.g. SUM(price).
struct AggregateExpr {
  AggFn fn = AggFn::kSum;
  ColumnRef column;  // ignored for COUNT(*)
};

/// One conjunct of a predicate: column ∈ range.
struct PredicateTerm {
  ColumnRef column;
  ValueRange range;
};

/// Conjunction of simple column/range terms (the engine's predicate
/// language; disjunctions are out of scope, as in the paper's workloads).
using Predicate = std::vector<PredicateTerm>;

/// Equi-join edge between two of the query's tables. The current executor
/// supports star joins: left_table must be 0 (the fact table) and each edge
/// joins it to a distinct dimension table.
struct JoinEdge {
  int left_table = 0;
  ColumnId left_column = 0;
  int right_table = 1;
  ColumnId right_column = 0;
};

/// OLAP aggregation query, optionally grouped, filtered and joined.
struct AggregationQuery {
  std::vector<std::string> tables;  // [fact, dim1, dim2, ...]
  std::vector<JoinEdge> joins;      // empty for single-table aggregation
  std::vector<AggregateExpr> aggregates;
  std::vector<ColumnRef> group_by;
  Predicate predicate;
};

/// OLTP point or range select over one table.
struct SelectQuery {
  std::string table;
  std::vector<ColumnId> select_columns;
  Predicate predicate;  // all terms must have table_index 0
  std::optional<size_t> limit;
};

/// Single-row insert.
struct InsertQuery {
  std::string table;
  Row row;
};

/// Predicate-qualified update of a set of columns.
struct UpdateQuery {
  std::string table;
  Predicate predicate;
  std::vector<ColumnId> set_columns;
  Row set_values;
};

/// Predicate-qualified delete.
struct DeleteQuery {
  std::string table;
  Predicate predicate;
};

using Query = std::variant<AggregationQuery, SelectQuery, InsertQuery,
                           UpdateQuery, DeleteQuery>;

enum class QueryKind : uint8_t {
  kAggregation = 0,
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
};
inline constexpr int kNumQueryKinds = 5;
std::string_view QueryKindName(QueryKind kind);

QueryKind KindOf(const Query& query);

/// OLAP/OLTP classification as used throughout the paper's evaluation:
/// aggregation queries are OLAP, everything else OLTP.
bool IsOlap(const Query& query);

/// Names of all tables the query touches (fact first for joins).
std::vector<std::string> TablesOf(const Query& query);

/// Compact human-readable rendering for logs and examples.
std::string QueryToString(const Query& query);

/// True when the predicate consists of exactly one equality term on
/// `pk_column` (the executor's point fast path).
bool IsPointPredicateOn(const Predicate& predicate, ColumnId pk_column);

}  // namespace hsdb

#endif  // HSDB_EXECUTOR_QUERY_H_
