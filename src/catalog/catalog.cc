#include "catalog/catalog.h"

#include <algorithm>
#include <shared_mutex>
#include <utility>

namespace hsdb {

Status Catalog::CreateTable(const std::string& name, Schema schema,
                            TableLayout layout, PhysicalOptions options) {
  HSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<LogicalTable> table,
      LogicalTable::Create(name, std::move(schema), std::move(layout),
                           options));
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.find(name) != tables_.end()) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  Entry entry;
  entry.table = std::move(table);
  tables_.emplace(name, std::move(entry));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  // Readers may still be scanning this version: retire, don't destroy. The
  // sync slot intentionally stays in syncs_ — a writer blocked on its latch
  // across the drop must keep serializing against any same-named successor.
  epochs_.RetireObject(std::move(it->second.table));
  epochs_.RetireObject(std::move(it->second.statistics));
  tables_.erase(it);
  epochs_.Advance();
  return Status::OK();
}

LogicalTable* Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

Result<LogicalTable*> Catalog::Find(const std::string& name) const {
  LogicalTable* table = GetTable(name);
  if (table == nullptr) {
    return Status::NotFound("table " + name + " does not exist");
  }
  return table;
}

Status Catalog::ReplaceTable(const std::string& name,
                             std::unique_ptr<LogicalTable> table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  if (!(it->second.table->schema() == table->schema())) {
    return Status::InvalidArgument("replacement schema mismatch");
  }
  // Publish the new version; the old one and its statistics go to the
  // epoch manager (in-flight readers resolved them under a pin).
  epochs_.RetireObject(std::move(it->second.table));
  epochs_.RetireObject(std::move(it->second.statistics));
  it->second.table = std::move(table);
  it->second.statistics = nullptr;  // stale after a physical reorganization
  it->second.analyzed_version = 0;
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

size_t Catalog::table_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

const TableStatistics* Catalog::GetStatistics(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return nullptr;
  return it->second.statistics.get();
}

Status Catalog::UpdateStatistics(const std::string& name) {
  // Pin-then-resolve: the pin keeps whatever version we resolve alive even
  // if a migration swaps it out mid-analysis.
  EpochPin pin(&epochs_);
  LogicalTable* table = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table " + name + " does not exist");
    }
    table = it->second.table.get();
  }

  std::shared_ptr<TableSync> s = sync(name);
  std::unique_ptr<TableStatistics> fresh;
  uint64_t version = 0;
  {
    // Reader lock: pause writers while profiling (data_version and the
    // column contents are plain fields DML mutates), let scans proceed.
    std::shared_lock<std::shared_mutex> rd(s->rw);
    version = table->data_version();
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = tables_.find(name);
      if (it == tables_.end() || it->second.table.get() != table) {
        return Status::OK();  // swapped/dropped meanwhile; nothing to refresh
      }
      if (it->second.statistics != nullptr &&
          it->second.analyzed_version == version) {
        return Status::OK();  // memoized: nothing mutated since last refresh
      }
    }
    fresh = std::make_unique<TableStatistics>(Analyze(*table));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end() || it->second.table.get() != table) {
    return Status::OK();  // analyzed a version that was swapped away
  }
  epochs_.RetireObject(std::move(it->second.statistics));
  it->second.statistics = std::move(fresh);
  it->second.analyzed_version = version;
  return Status::OK();
}

void Catalog::UpdateAllStatistics() {
  for (const std::string& name : TableNames()) {
    // A name can vanish between the snapshot and the refresh (concurrent
    // drop); that is not an error for a bulk refresh.
    (void)UpdateStatistics(name);
  }
}

size_t Catalog::total_memory_bytes() const {
  EpochPin pin(&epochs_);
  size_t total = 0;
  for (const std::string& name : TableNames()) {
    LogicalTable* table = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = tables_.find(name);
      if (it == tables_.end()) continue;
      table = it->second.table.get();
    }
    std::shared_ptr<TableSync> s = sync(name);
    std::shared_lock<std::shared_mutex> rd(s->rw);
    total += table->memory_bytes();
  }
  return total;
}

void Catalog::set_metrics(telemetry::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
}

std::shared_ptr<TableSync> Catalog::sync(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<TableSync>& slot = syncs_[name];
  if (slot == nullptr) {
    slot = std::make_shared<TableSync>();
    if (metrics_ != nullptr) {
      // Sub-millisecond holds are the norm, so start the grid at 0.1us.
      const telemetry::Labels labels = {{"table", name}};
      slot->metrics = metrics_;
      slot->latch_wait_ms = &metrics_->GetHistogram(
          "hsdb_table_latch_wait_ms",
          "Time writers spent blocked acquiring the per-table writer latch",
          labels, 1e-4);
      slot->latch_hold_ms = &metrics_->GetHistogram(
          "hsdb_table_latch_hold_ms",
          "Time the per-table writer latch was held per acquisition", labels,
          1e-4);
    }
  }
  return slot;
}

CatalogReadLock::CatalogReadLock(const Catalog& catalog,
                                 std::vector<std::string> names)
    : pin_(&catalog.epochs()) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  syncs_.reserve(names.size());
  locks_.reserve(names.size());
  for (const std::string& name : names) {
    syncs_.push_back(catalog.sync(name));
    locks_.emplace_back(syncs_.back()->rw);
  }
}

}  // namespace hsdb
