#include "catalog/catalog.h"

namespace hsdb {

Status Catalog::CreateTable(const std::string& name, Schema schema,
                            TableLayout layout, PhysicalOptions options) {
  if (tables_.find(name) != tables_.end()) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  HSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<LogicalTable> table,
      LogicalTable::Create(name, std::move(schema), std::move(layout),
                           options));
  Entry entry;
  entry.table = std::move(table);
  tables_.emplace(name, std::move(entry));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  tables_.erase(it);
  return Status::OK();
}

LogicalTable* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

Result<LogicalTable*> Catalog::Find(const std::string& name) const {
  LogicalTable* table = GetTable(name);
  if (table == nullptr) {
    return Status::NotFound("table " + name + " does not exist");
  }
  return table;
}

Status Catalog::ReplaceTable(const std::string& name,
                             std::unique_ptr<LogicalTable> table) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  if (!(it->second.table->schema() == table->schema())) {
    return Status::InvalidArgument("replacement schema mismatch");
  }
  it->second.table = std::move(table);
  it->second.statistics.reset();  // stale after a physical reorganization
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

const TableStatistics* Catalog::GetStatistics(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return nullptr;
  return it->second.statistics.get();
}

Status Catalog::UpdateStatistics(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " does not exist");
  }
  AnalyzeEntry(it->second);
  return Status::OK();
}

void Catalog::UpdateAllStatistics() {
  for (auto& [name, entry] : tables_) AnalyzeEntry(entry);
}

void Catalog::AnalyzeEntry(Entry& entry) {
  // Memoize on the table's statistics version counter: re-running Analyze
  // (and with it the EncodingPicker re-profiling of every column) is only
  // needed after a mutation or delta merge moved the counter.
  const uint64_t version = entry.table->data_version();
  if (entry.statistics != nullptr && entry.analyzed_version == version) {
    return;
  }
  entry.statistics = std::make_unique<TableStatistics>(Analyze(*entry.table));
  entry.analyzed_version = version;
}

size_t Catalog::total_memory_bytes() const {
  size_t total = 0;
  for (const auto& [name, entry] : tables_) {
    total += entry.table->memory_bytes();
  }
  return total;
}

}  // namespace hsdb
