// System catalog: the registry of logical tables, their layout annotations
// (paper §4: "for each table, there is an annotation that describes the
// partitioning"), and their statistics.
//
// The catalog is the publication point of the engine's table versions, so
// it also anchors the concurrency machinery (docs/CONCURRENCY.md):
//
//   - Every method is thread-safe; the internal map mutex sits *below*
//     every table latch in the lock order (only the epoch manager's mutex
//     is ever acquired under it), so it can be taken while holding any
//     TableSync lock.
//   - ReplaceTable and DropTable never destroy a table inline — a reader
//     may still be scanning it. Replaced/dropped tables and statistics are
//     retired into the EpochManager and reclaimed after the last reader
//     pinned at or before the swap drains.
//   - Each table name owns a TableSync (reader/writer lock + writer latch)
//     that survives ReplaceTable; Database::Execute and the migration
//     cut-over coordinate through it.
#ifndef HSDB_CATALOG_CATALOG_H_
#define HSDB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/statistics.h"
#include "common/epoch.h"
#include "storage/logical_table.h"
#include "storage/table_version.h"

namespace hsdb {

class Catalog {
 public:
  Catalog() = default;
  HSDB_DISALLOW_COPY_AND_ASSIGN(Catalog);

  /// Creates an empty table under `name` with the given layout.
  Status CreateTable(const std::string& name, Schema schema,
                     TableLayout layout, PhysicalOptions options = {});

  /// Unpublishes the table; the object itself is retired, not destroyed
  /// (an in-flight reader may still hold it).
  Status DropTable(const std::string& name);

  /// Looks a table up; nullptr when absent. The pointer stays valid for as
  /// long as the caller's epoch pin (or single-threaded ownership) does —
  /// a concurrent ReplaceTable retires, never deletes, the version.
  LogicalTable* GetTable(const std::string& name) const;

  /// Looks a table up; NotFound when absent.
  Result<LogicalTable*> Find(const std::string& name) const;

  /// Swaps in a rematerialized replacement (layout change); schemas must
  /// match. The previous version and its statistics are retired into the
  /// epoch manager. Statistics are refreshed lazily by the caller.
  Status ReplaceTable(const std::string& name,
                      std::unique_ptr<LogicalTable> table);

  /// Table names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;
  size_t table_count() const;

  /// Statistics for `name`; nullptr when never analyzed. Same lifetime rule
  /// as GetTable: valid under the caller's epoch pin.
  const TableStatistics* GetStatistics(const std::string& name) const;

  /// Refreshes statistics for one table / all tables. Memoized on the
  /// table's data_version(): when nothing mutated since the last refresh,
  /// the existing statistics are kept (no column re-profiling) and
  /// GetStatistics keeps returning the same object. The analysis scan runs
  /// under the table's reader lock (writers pause, readers proceed) and
  /// outside the catalog mutex; a replaced statistics object is retired,
  /// not destroyed.
  Status UpdateStatistics(const std::string& name);
  void UpdateAllStatistics();

  /// Sum of memory across all tables. Takes each table's reader lock while
  /// sizing it, so it is safe against concurrent DML.
  size_t total_memory_bytes() const;

  // Concurrency anchors ----------------------------------------------------

  /// The per-name synchronization slot, created on first use. Keyed by
  /// name, not version: it survives ReplaceTable, so latch holders blocked
  /// across a swap wake against the new version. The shared_ptr keeps the
  /// slot alive across a concurrent DropTable.
  std::shared_ptr<TableSync> sync(const std::string& name) const;

  /// Reclamation domain of every version this catalog ever published.
  EpochManager& epochs() const { return epochs_; }

  /// Installs the registry that receives per-table latch contention
  /// histograms (hsdb_table_latch_{wait,hold}_ms{table=...}). Call before
  /// traffic: only TableSyncs created after this point are instrumented
  /// (Database installs it at construction, ahead of any table).
  void set_metrics(telemetry::MetricsRegistry* metrics);

 private:
  struct Entry {
    std::unique_ptr<LogicalTable> table;
    std::unique_ptr<TableStatistics> statistics;
    /// data_version() the statistics were computed at.
    uint64_t analyzed_version = 0;
  };

  /// Guards tables_ and syncs_. Near-leaf: only the epoch manager's mutex
  /// is acquired under it (retiring inside ReplaceTable/DropTable); table
  /// analysis and destruction happen outside.
  mutable std::mutex mu_;
  std::map<std::string, Entry> tables_;
  mutable std::map<std::string, std::shared_ptr<TableSync>> syncs_;
  mutable EpochManager epochs_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

/// Scoped read access to a set of tables: pins the reclamation epoch and
/// holds every named table's reader lock for its lifetime, so the holder
/// may dereference GetTable/GetStatistics pointers and read mutable table
/// state (row counts, group lists) while client DML runs on other threads.
/// Names are deduplicated and the locks acquired in sorted order — the
/// same discipline as Database::Execute's statement locks, so a reader
/// here and a multi-table writer there cannot deadlock. Used by the
/// adaptation controller's planning/costing reads, which run concurrently
/// with traffic but outside any statement.
class CatalogReadLock {
 public:
  CatalogReadLock(const Catalog& catalog, std::vector<std::string> names);
  HSDB_DISALLOW_COPY_AND_ASSIGN(CatalogReadLock);

 private:
  EpochPin pin_;
  std::vector<std::shared_ptr<TableSync>> syncs_;
  std::vector<std::shared_lock<std::shared_mutex>> locks_;
};

}  // namespace hsdb

#endif  // HSDB_CATALOG_CATALOG_H_
