// System catalog: the registry of logical tables, their layout annotations
// (paper §4: "for each table, there is an annotation that describes the
// partitioning"), and their statistics.
#ifndef HSDB_CATALOG_CATALOG_H_
#define HSDB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/statistics.h"
#include "storage/logical_table.h"

namespace hsdb {

class Catalog {
 public:
  Catalog() = default;
  HSDB_DISALLOW_COPY_AND_ASSIGN(Catalog);

  /// Creates an empty table under `name` with the given layout.
  Status CreateTable(const std::string& name, Schema schema,
                     TableLayout layout, PhysicalOptions options = {});

  Status DropTable(const std::string& name);

  /// Looks a table up; nullptr when absent.
  LogicalTable* GetTable(const std::string& name) const;

  /// Looks a table up; NotFound when absent.
  Result<LogicalTable*> Find(const std::string& name) const;

  /// Swaps in a rematerialized replacement (layout change); schemas must
  /// match. Statistics are refreshed lazily by the caller.
  Status ReplaceTable(const std::string& name,
                      std::unique_ptr<LogicalTable> table);

  /// Table names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;
  size_t table_count() const { return tables_.size(); }

  /// Statistics for `name`; nullptr when never analyzed.
  const TableStatistics* GetStatistics(const std::string& name) const;

  /// Refreshes statistics for one table / all tables. Memoized on the
  /// table's data_version(): when nothing mutated since the last refresh,
  /// the existing statistics are kept (no column re-profiling) and
  /// GetStatistics keeps returning the same object.
  Status UpdateStatistics(const std::string& name);
  void UpdateAllStatistics();

  /// Sum of memory across all tables.
  size_t total_memory_bytes() const;

 private:
  struct Entry {
    std::unique_ptr<LogicalTable> table;
    std::unique_ptr<TableStatistics> statistics;
    /// data_version() the statistics were computed at.
    uint64_t analyzed_version = 0;
  };

  void AnalyzeEntry(Entry& entry);

  std::map<std::string, Entry> tables_;
};

}  // namespace hsdb

#endif  // HSDB_CATALOG_CATALOG_H_
