// Table statistics: the "data characteristics" input of the storage advisor
// (paper §3/§4). Basic statistics cover row counts and per-column
// distinct/min/max/compression; they are computed by Analyze() and kept in
// the system catalog.
#ifndef HSDB_CATALOG_STATISTICS_H_
#define HSDB_CATALOG_STATISTICS_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/compression/encoding.h"
#include "storage/compression/encoding_picker.h"
#include "storage/logical_table.h"

namespace hsdb {

/// Per-column statistics.
struct ColumnStatistics {
  DataType type = DataType::kInt64;
  uint64_t distinct_count = 0;
  /// Numeric min/max (unset for VARCHAR columns).
  std::optional<double> min;
  std::optional<double> max;
  /// Compressed/plain size ratio when stored column-oriented; 1.0 row-based.
  double compression_rate = 1.0;
  /// Average maximal-run length in physical row order — the run-structure
  /// input of the encoding picker. 1.0 when unknown (sampled VARCHAR scans).
  double avg_run_length = 1.0;
  /// Average in-memory bytes of one plain value (string header + payload
  /// for VARCHAR) — must match the store-side encoding profile so the
  /// advisor predicts the codec the store will actually pick.
  double avg_plain_bytes = 8.0;
  /// Codec the compression subsystem has chosen (column-store resident) or
  /// would choose (hypothetical move costed by the advisor) for the main
  /// segment of this column.
  Encoding encoding = Encoding::kDictionary;
};

/// Per-table statistics.
struct TableStatistics {
  uint64_t row_count = 0;
  std::vector<ColumnStatistics> columns;
  /// Size-weighted mean column compression rate (the paper's per-table
  /// f_compression input).
  double table_compression_rate = 1.0;
  size_t memory_bytes = 0;

  const ColumnStatistics& column(ColumnId id) const { return columns.at(id); }

  /// Fraction of rows selected by `range` on column `col`, estimated from
  /// min/max under a uniformity assumption (classic selectivity estimate).
  double EstimateSelectivity(ColumnId col, const ValueRange& range) const;

  std::string ToString() const;
};

/// Scans a logical table and computes fresh statistics. Distinct counts are
/// exact (hash-based) for tables below `exact_distinct_limit` rows and
/// estimated from a sample above it.
TableStatistics Analyze(const LogicalTable& table,
                        size_t exact_distinct_limit = 2'000'000);

/// Encoding-picker profile of a column as seen through its statistics: the
/// advisor-side approximation of the exact per-segment profile the store
/// computes at encode time. This is the bridge the encoding search uses to
/// enumerate feasible codecs and estimate per-codec footprints
/// (compression::CandidateEncodings / compression::EstimateEncodedBytes)
/// without touching the physical data.
compression::EncodingProfile StatisticsEncodingProfile(
    const ColumnStatistics& cs, uint64_t row_count);

}  // namespace hsdb

#endif  // HSDB_CATALOG_STATISTICS_H_
