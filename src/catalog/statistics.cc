#include "catalog/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "common/bitpack.h"
#include "common/hash.h"
#include "storage/scan_dispatch.h"

namespace hsdb {

double TableStatistics::EstimateSelectivity(ColumnId col,
                                            const ValueRange& range) const {
  const ColumnStatistics& cs = columns.at(col);
  if (row_count == 0) return 0.0;
  if (range.IsPoint()) {
    return cs.distinct_count == 0 ? 0.0 : 1.0 / cs.distinct_count;
  }
  if (!cs.min.has_value() || !cs.max.has_value()) {
    // No numeric bounds (VARCHAR range): fall back to a fixed guess.
    return 0.3;
  }
  double mn = *cs.min;
  double mx = *cs.max;
  if (mx <= mn) return 1.0;
  double lo = range.lo.has_value() ? range.lo->AsNumeric() : mn;
  double hi = range.hi.has_value() ? range.hi->AsNumeric() : mx;
  double overlap = std::min(hi, mx) - std::max(lo, mn);
  if (overlap < 0) return 0.0;
  return std::clamp(overlap / (mx - mn), 0.0, 1.0);
}

std::string TableStatistics::ToString() const {
  std::ostringstream os;
  os << "rows=" << row_count
     << ", compression=" << table_compression_rate
     << ", bytes=" << memory_bytes << ", columns=[";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << ", ";
    os << i << ":{distinct=" << columns[i].distinct_count
       << ", compr=" << columns[i].compression_rate << "}";
  }
  os << "]";
  return os.str();
}

namespace {

/// Analytic compression estimate for a column *if* it were stored
/// column-oriented with a sorted dictionary + bit-packed ids. Used for
/// columns currently resident in the row store, so the advisor can cost the
/// hypothetical move.
double EstimateCsCompression(uint64_t rows, uint64_t distinct,
                             uint32_t plain_width) {
  if (rows == 0 || distinct == 0) return 1.0;
  double dict_bytes = static_cast<double>(distinct) * plain_width;
  double bits = distinct <= 1 ? 1.0 : BitPackedVector::WidthFor(distinct - 1);
  double ids_bytes = static_cast<double>(rows) * bits / 8.0;
  double plain_bytes = static_cast<double>(rows) * plain_width;
  return (dict_bytes + ids_bytes) / plain_bytes;
}

}  // namespace

TableStatistics Analyze(const LogicalTable& table,
                        size_t exact_distinct_limit) {
  const Schema& schema = table.schema();
  TableStatistics stats;
  stats.row_count = table.row_count();
  stats.memory_bytes = table.memory_bytes();
  stats.columns.resize(schema.num_columns());

  const size_t stride =
      stats.row_count <= exact_distinct_limit
          ? 1
          : (stats.row_count + exact_distinct_limit - 1) /
                exact_distinct_limit;

  for (ColumnId col = 0; col < schema.num_columns(); ++col) {
    ColumnStatistics& cs = stats.columns[col];
    cs.type = schema.column(col).type;
    const bool numeric = IsNumeric(cs.type);
    std::unordered_set<uint64_t> distinct;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    size_t seen = 0;
    size_t sampled = 0;
    double measured_rate = 0.0;
    size_t measured_pieces = 0;

    for (const RowGroup& group : table.groups()) {
      for (const Fragment& frag : group.fragments) {
        if (!frag.Contains(col)) continue;
        ColumnId fc = frag.FragColumn(col);
        if (frag.table->store() == StoreType::kColumn) {
          measured_rate += frag.table->CompressionRate(fc);
          ++measured_pieces;
        }
        // Pseudo-random sampling (hash of the running position) instead of a
        // fixed stride: systematic sampling aliases with periodic data.
        auto take_sample = [&](size_t position) {
          return stride == 1 || Mix64(position) % stride == 0;
        };
        if (numeric) {
          ForEachNumericIn(*frag.table, fc, nullptr, [&](RowId, double v) {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
            if (take_sample(seen++)) {
              ++sampled;
              uint64_t bits;
              std::memcpy(&bits, &v, sizeof(v));
              distinct.insert(bits);
            }
          });
        } else {
          frag.table->live_bitmap().ForEachSet([&](size_t rid) {
            if (!take_sample(seen++)) return;
            ++sampled;
            Value v = frag.table->GetValue(rid, fc);
            distinct.insert(std::hash<std::string>{}(v.as_string()));
          });
        }
        break;  // one fragment per group holds the column's authoritative copy
      }
    }

    // Scale sampled distinct counts back up, capped by the row count.
    uint64_t d = distinct.size();
    if (stride > 1 && sampled > 0) {
      double scale = static_cast<double>(stats.row_count) / sampled;
      // Low-cardinality columns saturate the sample; only scale when the
      // sample looks close to all-distinct.
      if (d > sampled / 2) {
        d = static_cast<uint64_t>(static_cast<double>(d) * scale);
      }
    }
    cs.distinct_count = std::min<uint64_t>(d, stats.row_count);
    if (numeric && mn <= mx) {
      cs.min = mn;
      cs.max = mx;
    }
    if (measured_pieces > 0) {
      cs.compression_rate = measured_rate / measured_pieces;
    } else {
      cs.compression_rate = EstimateCsCompression(
          stats.row_count, cs.distinct_count, FixedWidth(cs.type));
    }
  }

  if (!stats.columns.empty()) {
    double total = 0.0;
    for (const ColumnStatistics& cs : stats.columns) {
      total += cs.compression_rate;
    }
    stats.table_compression_rate = total / stats.columns.size();
  }
  return stats;
}

}  // namespace hsdb
