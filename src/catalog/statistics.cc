#include "catalog/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "common/bitpack.h"
#include "common/hash.h"
#include "storage/compression/encoding_picker.h"
#include "storage/scan_dispatch.h"

namespace hsdb {

double TableStatistics::EstimateSelectivity(ColumnId col,
                                            const ValueRange& range) const {
  const ColumnStatistics& cs = columns.at(col);
  if (row_count == 0) return 0.0;
  if (range.IsPoint()) {
    return cs.distinct_count == 0 ? 0.0 : 1.0 / cs.distinct_count;
  }
  if (!cs.min.has_value() || !cs.max.has_value()) {
    // No numeric bounds (VARCHAR range): fall back to a fixed guess.
    return 0.3;
  }
  double mn = *cs.min;
  double mx = *cs.max;
  if (mx <= mn) return 1.0;
  double lo = range.lo.has_value() ? range.lo->AsNumeric() : mn;
  double hi = range.hi.has_value() ? range.hi->AsNumeric() : mx;
  double overlap = std::min(hi, mx) - std::max(lo, mn);
  if (overlap < 0) return 0.0;
  return std::clamp(overlap / (mx - mn), 0.0, 1.0);
}

std::string TableStatistics::ToString() const {
  std::ostringstream os;
  os << "rows=" << row_count
     << ", compression=" << table_compression_rate
     << ", bytes=" << memory_bytes << ", columns=[";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << ", ";
    os << i << ":{distinct=" << columns[i].distinct_count
       << ", compr=" << columns[i].compression_rate
       << ", enc=" << EncodingName(columns[i].encoding) << "}";
  }
  os << "]";
  return os.str();
}

compression::EncodingProfile StatisticsEncodingProfile(
    const ColumnStatistics& cs, uint64_t rows) {
  compression::EncodingProfile p;
  p.row_count = rows;
  p.distinct_count = cs.distinct_count;
  double runs = cs.avg_run_length <= 1.0
                    ? static_cast<double>(rows)
                    : static_cast<double>(rows) / cs.avg_run_length;
  p.run_count = static_cast<uint64_t>(std::max(1.0, runs));
  p.is_integer = cs.type == DataType::kInt32 ||
                 cs.type == DataType::kInt64 || cs.type == DataType::kDate;
  // The double-typed stats bounds only translate into an exact integer
  // domain while they round-trip; near ±2^63 the cast would be UB, so FOR
  // is simply not offered there (the picker treats it as inapplicable).
  constexpr double kSafeInt64 = 9.0e18;
  if (p.is_integer && rows > 0 && cs.min.has_value() &&
      cs.max.has_value() && *cs.min >= -kSafeInt64 &&
      *cs.max <= kSafeInt64) {
    p.min_value = static_cast<int64_t>(*cs.min);
    p.max_value = static_cast<int64_t>(*cs.max);
  } else if (rows > 0) {
    p.is_integer = false;
  }
  p.plain_value_bytes = cs.avg_plain_bytes;
  return p;
}

namespace {

/// Analytic compression estimate for a column *if* it were stored
/// column-oriented under `encoding`. Used for columns currently resident in
/// the row store, so the advisor can cost the hypothetical move.
double EstimateCsCompression(const compression::EncodingProfile& profile,
                             Encoding encoding) {
  if (profile.row_count == 0 || profile.distinct_count == 0) return 1.0;
  double plain_bytes =
      static_cast<double>(profile.row_count) * profile.plain_value_bytes;
  if (plain_bytes <= 0.0) return 1.0;
  return compression::EstimateEncodedBytes(encoding, profile) / plain_bytes;
}

}  // namespace

TableStatistics Analyze(const LogicalTable& table,
                        size_t exact_distinct_limit) {
  const Schema& schema = table.schema();
  TableStatistics stats;
  stats.row_count = table.row_count();
  stats.memory_bytes = table.memory_bytes();
  stats.columns.resize(schema.num_columns());

  const size_t stride =
      stats.row_count <= exact_distinct_limit
          ? 1
          : (stats.row_count + exact_distinct_limit - 1) /
                exact_distinct_limit;

  for (ColumnId col = 0; col < schema.num_columns(); ++col) {
    ColumnStatistics& cs = stats.columns[col];
    cs.type = schema.column(col).type;
    const bool numeric = IsNumeric(cs.type);
    std::unordered_set<uint64_t> distinct;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    size_t seen = 0;
    size_t sampled = 0;
    size_t run_count = 0;
    size_t run_rows = 0;
    size_t string_payload = 0;
    double measured_rate = 0.0;
    size_t measured_pieces = 0;
    std::optional<Encoding> measured_encoding;

    for (const RowGroup& group : table.groups()) {
      for (const Fragment& frag : group.fragments) {
        if (!frag.Contains(col)) continue;
        ColumnId fc = frag.FragColumn(col);
        if (frag.table->store() == StoreType::kColumn) {
          measured_rate += frag.table->CompressionRate(fc);
          ++measured_pieces;
          const auto& ct = static_cast<const ColumnTable&>(*frag.table);
          if (!measured_encoding.has_value() && ct.main_rows() > 0) {
            measured_encoding = ct.ColumnEncoding(fc);
          }
        }
        // Pseudo-random sampling (hash of the running position) instead of a
        // fixed stride: systematic sampling aliases with periodic data.
        auto take_sample = [&](size_t position) {
          return stride == 1 || Mix64(position) % stride == 0;
        };
        if (numeric) {
          bool in_run = false;
          double prev = 0.0;
          ForEachNumericIn(*frag.table, fc, nullptr, [&](RowId, double v) {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
            // Exact run structure in physical order (the encoding picker's
            // RLE input); fragments restart the run.
            if (!in_run || v != prev) {
              ++run_count;
              in_run = true;
              prev = v;
            }
            ++run_rows;
            if (take_sample(seen++)) {
              ++sampled;
              uint64_t bits;
              std::memcpy(&bits, &v, sizeof(v));
              distinct.insert(bits);
            }
          });
        } else {
          bool in_run = false;
          uint64_t prev_hash = 0;
          frag.table->live_bitmap().ForEachSet([&](size_t rid) {
            if (!take_sample(seen++)) return;
            ++sampled;
            Value v = frag.table->GetValue(rid, fc);
            string_payload += v.as_string().size();
            uint64_t h = std::hash<std::string>{}(v.as_string());
            distinct.insert(h);
            // Exact runs only in full-scan mode; a strided sample breaks
            // runs apart and would undercount their length.
            if (stride == 1) {
              if (!in_run || h != prev_hash) {
                ++run_count;
                in_run = true;
                prev_hash = h;
              }
              ++run_rows;
            }
          });
        }
        break;  // one fragment per group holds the column's authoritative copy
      }
    }

    // Scale sampled distinct counts back up, capped by the row count.
    uint64_t d = distinct.size();
    if (stride > 1 && sampled > 0) {
      double scale = static_cast<double>(stats.row_count) / sampled;
      // Low-cardinality columns saturate the sample; only scale when the
      // sample looks close to all-distinct.
      if (d > sampled / 2) {
        d = static_cast<uint64_t>(static_cast<double>(d) * scale);
      }
    }
    cs.distinct_count = std::min<uint64_t>(d, stats.row_count);
    if (numeric && mn <= mx) {
      cs.min = mn;
      cs.max = mx;
    }
    if (run_count > 0) {
      cs.avg_run_length =
          static_cast<double>(run_rows) / static_cast<double>(run_count);
    }
    // Plain footprint of one value, matching compression::ProfileValues:
    // the physical width for numerics, string header + mean payload for
    // VARCHAR (from the sample).
    if (numeric) {
      cs.avg_plain_bytes = FixedWidth(cs.type);
    } else {
      cs.avg_plain_bytes =
          sizeof(std::string) +
          (sampled > 0 ? static_cast<double>(string_payload) /
                             static_cast<double>(sampled)
                       : 0.0);
    }
    // Encoding: what the column store picked where it holds the column, or
    // what the picker would choose for the hypothetical move.
    compression::EncodingProfile profile =
        StatisticsEncodingProfile(cs, stats.row_count);
    cs.encoding = measured_encoding.has_value()
                      ? *measured_encoding
                      : compression::EncodingPicker().Pick(profile);
    if (measured_pieces > 0) {
      cs.compression_rate = measured_rate / measured_pieces;
    } else {
      cs.compression_rate = EstimateCsCompression(profile, cs.encoding);
    }
  }

  if (!stats.columns.empty()) {
    double total = 0.0;
    for (const ColumnStatistics& cs : stats.columns) {
      total += cs.compression_rate;
    }
    stats.table_compression_rate = total / stats.columns.size();
  }
  return stats;
}

}  // namespace hsdb
