#include "core/probe_runner.h"

#include <algorithm>

#include "common/random.h"
#include "common/stopwatch.h"

namespace hsdb {

namespace {

// Probe table layout: a primary key, one measure column per numeric type
// (d0 drives the compression sweep), spare numeric columns for the
// selected-columns sweep, a filter column with a known value domain for the
// selectivity sweep, a small group-by column, and padding columns that bring
// the row stride to ~the paper's 30-attribute table. The padding matters:
// row-store scan cost is stride-dependent (every scan drags the full tuple
// width through the cache hierarchy), so the probe tables must be width-
// representative of the advised tables.
//   0:id 1:d0 2:i32 3:i64 4:dt 5:c0 6:c1 7:c2 8:c3 9:filt 10:grp 11..22:pad
constexpr ColumnId kId = 0;
constexpr ColumnId kD0 = 1;
constexpr ColumnId kI32 = 2;
constexpr ColumnId kI64 = 3;
constexpr ColumnId kDt = 4;
constexpr ColumnId kC0 = 5;
constexpr ColumnId kFilt = 9;
constexpr ColumnId kGrp = 10;
constexpr int kPadColumns = 12;
constexpr int64_t kFiltDomain = 100'000;

Schema ProbeSchema() {
  std::vector<ColumnDef> cols = {{"id", DataType::kInt64},
                                 {"d0", DataType::kDouble},
                                 {"i32", DataType::kInt32},
                                 {"i64", DataType::kInt64},
                                 {"dt", DataType::kDate},
                                 {"c0", DataType::kDouble},
                                 {"c1", DataType::kDouble},
                                 {"c2", DataType::kDouble},
                                 {"c3", DataType::kDouble},
                                 {"filt", DataType::kInt32},
                                 {"grp", DataType::kInt32}};
  for (int i = 0; i < kPadColumns; ++i) {
    cols.push_back({"pad" + std::to_string(i), DataType::kDouble});
  }
  return Schema::CreateOrDie(std::move(cols), {0});
}

Row ProbeRow(int64_t id, uint64_t distinct) {
  Rng rng(static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ull + 3);
  // The measure columns cycle through `distinct` values (0 = all distinct).
  int64_t v = distinct == 0 ? id : id % static_cast<int64_t>(distinct);
  Row row = {id,
             static_cast<double>(v) * 1.5,
             static_cast<int32_t>(v % 100'000),
             v,
             Date{static_cast<int32_t>(v % 20'000)},
             rng.UniformDouble(0, 1e4),
             rng.UniformDouble(0, 1e4),
             rng.UniformDouble(0, 1e4),
             rng.UniformDouble(0, 1e4),
             static_cast<int32_t>(rng.UniformInt(0, kFiltDomain - 1)),
             static_cast<int32_t>(rng.UniformInt(0, 19))};
  for (int i = 0; i < kPadColumns; ++i) {
    // Low-cardinality padding: realistic compressibility, fast to build.
    row.push_back(Value(static_cast<double>(rng.UniformInt(0, 255))));
  }
  return row;
}

ColumnId SelectableColumn(size_t i) {
  static constexpr ColumnId kSelectable[] = {kId, kD0, kC0, kC0 + 1,
                                             kC0 + 2, kC0 + 3, kI64, kI32};
  return kSelectable[i % 8];
}

ColumnId MeasureColumn(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return kD0;
    case DataType::kInt32:
      return kI32;
    case DataType::kInt64:
      return kI64;
    case DataType::kDate:
      return kDt;
    case DataType::kVarchar:
      break;
  }
  HSDB_CHECK_MSG(false, "no probe measure column for type");
  return kD0;
}

}  // namespace

double EngineProbeRunner::TimeQuery(Database& db, const Query& query) {
  std::vector<double> samples;
  samples.reserve(options_.repeats);
  for (int i = 0; i < options_.repeats; ++i) {
    Result<QueryResult> r = db.Execute(query);
    HSDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    samples.push_back(r->elapsed_ms);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

EngineProbeRunner::Entry& EngineProbeRunner::ProbeTable(StoreType store,
                                                        size_t rows,
                                                        uint64_t distinct,
                                                        bool indexed,
                                                        int dop) {
  std::string key = "t:" + std::string(StoreTypeName(store)) + ":" +
                    std::to_string(rows) + ":" + std::to_string(distinct) +
                    (indexed ? ":idx" : "") +
                    (dop > 1 ? ":d" + std::to_string(dop) : "");
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  Entry entry;
  Database::Options db_options;
  db_options.num_threads = dop;
  entry.db = std::make_unique<Database>(db_options);
  HSDB_CHECK(entry.db
                 ->CreateTable("probe", ProbeSchema(),
                               TableLayout::SingleStore(store))
                 .ok());
  LogicalTable* table = entry.db->catalog().GetTable("probe");
  for (size_t i = 0; i < rows; ++i) {
    Status s = table->Insert(ProbeRow(static_cast<int64_t>(i), distinct));
    HSDB_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  table->ForceMerge();
  if (indexed && store == StoreType::kRow) {
    HSDB_CHECK(table->CreateSortedIndex(kId).ok());
    HSDB_CHECK(table->CreateSortedIndex(kFilt).ok());
  }
  entry.db->catalog().UpdateAllStatistics();
  entry.next_insert_id = static_cast<int64_t>(rows);
  const TableStatistics* stats = entry.db->catalog().GetStatistics("probe");
  entry.compression_rate = stats->column(kD0).compression_rate;
  return cache_.emplace(key, std::move(entry)).first->second;
}

ProbeResult EngineProbeRunner::MeasureAggregation(StoreType store, AggFn fn,
                                                  DataType type, bool grouped,
                                                  bool filtered, size_t rows,
                                                  uint64_t distinct) {
  Entry& entry = ProbeTable(store, rows, distinct, /*indexed=*/false);
  AggregationQuery q;
  q.tables = {"probe"};
  q.aggregates = {{fn, {MeasureColumn(type), 0}}};
  if (grouped) q.group_by = {{kGrp, 0}};
  if (filtered) {
    q.predicate = {{{kFilt, 0},
                    ValueRange::Between(Value(int32_t{0}),
                                        Value(int32_t{kFiltDomain / 2}))}};
  }
  return ProbeResult{TimeQuery(*entry.db, Query(q)),
                     store == StoreType::kColumn ? entry.compression_rate
                                                 : 1.0};
}

ProbeResult EngineProbeRunner::MeasureSelect(StoreType store,
                                             size_t selected_columns,
                                             double selectivity,
                                             bool use_index, size_t rows) {
  Entry& entry = ProbeTable(store, rows, /*distinct=*/1024,
                            use_index && store == StoreType::kRow);
  SelectQuery q;
  q.table = "probe";
  for (size_t i = 0; i < selected_columns; ++i) {
    q.select_columns.push_back(SelectableColumn(i));
  }
  auto width = std::max<int64_t>(
      1, static_cast<int64_t>(selectivity * kFiltDomain));
  q.predicate = {{{kFilt, 0},
                  ValueRange::Between(Value(int32_t{0}),
                                      Value(static_cast<int32_t>(width - 1)))}};
  return ProbeResult{TimeQuery(*entry.db, Query(q)), entry.compression_rate};
}

ProbeResult EngineProbeRunner::MeasurePointSelect(StoreType store,
                                                  size_t rows) {
  Entry& entry = ProbeTable(store, rows, /*distinct=*/1024, false);
  // Median over a batch of lookups with distinct keys (single lookups are
  // too fast to time individually).
  constexpr int kBatch = 64;
  Rng rng(rows * 31 + 7);
  Stopwatch sw;
  for (int i = 0; i < kBatch; ++i) {
    SelectQuery q;
    q.table = "probe";
    q.select_columns = {kD0};
    q.predicate = {
        {{kId, 0},
         ValueRange::Eq(Value(rng.UniformInt(
             0, static_cast<int64_t>(rows) - 1)))}};
    Result<QueryResult> r = entry.db->Execute(Query(std::move(q)));
    HSDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  }
  return ProbeResult{sw.ElapsedMs() / kBatch, entry.compression_rate};
}

ProbeResult EngineProbeRunner::MeasureInsert(StoreType store, size_t rows) {
  Entry& entry = ProbeTable(store, rows, /*distinct=*/1024, false);
  Stopwatch sw;
  for (size_t i = 0; i < options_.insert_batch; ++i) {
    InsertQuery q{"probe", ProbeRow(entry.next_insert_id++, 1024)};
    Result<QueryResult> r = entry.db->Execute(Query(std::move(q)));
    HSDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  }
  return ProbeResult{sw.ElapsedMs() / options_.insert_batch,
                     entry.compression_rate};
}

ProbeResult EngineProbeRunner::MeasureUpdate(StoreType store,
                                             size_t affected_columns,
                                             size_t affected_rows,
                                             size_t rows) {
  Entry& entry = ProbeTable(store, rows, /*distinct=*/1024,
                            store == StoreType::kRow);
  UpdateQuery q;
  q.table = "probe";
  // Walk the key space so repeated probes touch different rows.
  int64_t base = (entry.next_insert_id * 7919) %
                 std::max<int64_t>(1, static_cast<int64_t>(rows) -
                                          static_cast<int64_t>(affected_rows));
  ++entry.next_insert_id;
  if (affected_rows == 1) {
    q.predicate = {{{kId, 0}, ValueRange::Eq(Value(base))}};
  } else {
    q.predicate = {
        {{kId, 0},
         ValueRange::Between(Value(base),
                             Value(base + static_cast<int64_t>(
                                              affected_rows) -
                                   1))}};
  }
  Rng rng(entry.next_insert_id);
  for (size_t i = 0; i < affected_columns; ++i) {
    q.set_columns.push_back(kC0 + static_cast<ColumnId>(i % 4));
    q.set_values.push_back(Value(rng.UniformDouble(0, 1e4)));
  }
  // Columns may repeat when affected_columns > 4; dedupe keeps it valid.
  std::vector<ColumnId> cols;
  Row vals;
  for (size_t i = 0; i < q.set_columns.size(); ++i) {
    if (std::find(cols.begin(), cols.end(), q.set_columns[i]) != cols.end()) {
      // Use the other measure columns for widths beyond the spares.
      ColumnId alt = (i % 2 == 0) ? kD0 : kI64;
      if (std::find(cols.begin(), cols.end(), alt) != cols.end()) continue;
      cols.push_back(alt);
      vals.push_back(alt == kD0 ? Value(rng.UniformDouble(0, 1e4))
                                : Value(rng.UniformInt(0, 1000)));
    } else {
      cols.push_back(q.set_columns[i]);
      vals.push_back(q.set_values[i]);
    }
  }
  q.set_columns = std::move(cols);
  q.set_values = std::move(vals);
  return ProbeResult{TimeQuery(*entry.db, Query(q)), entry.compression_rate};
}

EngineProbeRunner::Entry& EngineProbeRunner::JoinTables(StoreType fact_store,
                                                        StoreType dim_store,
                                                        size_t fact_rows,
                                                        size_t dim_rows) {
  std::string key = "j:" + std::string(StoreTypeName(fact_store)) + ":" +
                    std::string(StoreTypeName(dim_store)) + ":" +
                    std::to_string(fact_rows) + ":" +
                    std::to_string(dim_rows);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  Entry entry;
  Database::Options db_options;
  db_options.num_threads = 1;  // join probes measure the serial engine
  entry.db = std::make_unique<Database>(db_options);
  Schema fact = Schema::CreateOrDie({{"id", DataType::kInt64},
                                     {"fk", DataType::kInt64},
                                     {"kf", DataType::kDouble}},
                                    {0});
  Schema dim = Schema::CreateOrDie(
      {{"id", DataType::kInt64}, {"a0", DataType::kInt32}}, {0});
  HSDB_CHECK(entry.db
                 ->CreateTable("fact", fact,
                               TableLayout::SingleStore(fact_store))
                 .ok());
  HSDB_CHECK(entry.db
                 ->CreateTable("dim", dim, TableLayout::SingleStore(dim_store))
                 .ok());
  LogicalTable* ft = entry.db->catalog().GetTable("fact");
  LogicalTable* dt = entry.db->catalog().GetTable("dim");
  Rng rng(11);
  for (size_t i = 0; i < dim_rows; ++i) {
    HSDB_CHECK(dt->Insert({static_cast<int64_t>(i),
                           static_cast<int32_t>(rng.UniformInt(0, 49))})
                   .ok());
  }
  for (size_t i = 0; i < fact_rows; ++i) {
    HSDB_CHECK(
        ft->Insert({static_cast<int64_t>(i),
                    rng.UniformInt(0, static_cast<int64_t>(dim_rows) - 1),
                    rng.UniformDouble(0, 1e4)})
            .ok());
  }
  ft->ForceMerge();
  dt->ForceMerge();
  entry.db->catalog().UpdateAllStatistics();
  return cache_.emplace(key, std::move(entry)).first->second;
}

ProbeResult EngineProbeRunner::MeasureJoin(StoreType fact_store,
                                           StoreType dim_store,
                                           size_t fact_rows,
                                           size_t dim_rows) {
  Entry& entry = JoinTables(fact_store, dim_store, fact_rows, dim_rows);
  AggregationQuery q;
  q.tables = {"fact", "dim"};
  q.joins = {{0, 1, 1, 0}};
  q.aggregates = {{AggFn::kSum, {2, 0}}};
  return ProbeResult{TimeQuery(*entry.db, Query(q)), 1.0};
}

EngineProbeRunner::Entry& EngineProbeRunner::StitchTable(size_t rows,
                                                         bool split) {
  std::string key =
      "s:" + std::to_string(rows) + (split ? ":split" : ":plain");
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  Entry entry;
  Database::Options db_options;
  db_options.num_threads = 1;  // stitch probes measure the serial engine
  entry.db = std::make_unique<Database>(db_options);
  TableLayout layout = TableLayout::SingleStore(StoreType::kColumn);
  if (split) {
    layout.vertical = VerticalSpec{{2}};  // status column into the RS piece
  }
  Schema schema = Schema::CreateOrDie({{"id", DataType::kInt64},
                                       {"kf", DataType::kDouble},
                                       {"status", DataType::kInt32}},
                                      {0});
  HSDB_CHECK(entry.db->CreateTable("probe", schema, layout).ok());
  LogicalTable* table = entry.db->catalog().GetTable("probe");
  Rng rng(13);
  for (size_t i = 0; i < rows; ++i) {
    HSDB_CHECK(table
                   ->Insert({static_cast<int64_t>(i),
                             rng.UniformDouble(0, 1e4),
                             static_cast<int32_t>(rng.UniformInt(0, 4))})
                   .ok());
  }
  table->ForceMerge();
  entry.db->catalog().UpdateAllStatistics();
  return cache_.emplace(key, std::move(entry)).first->second;
}

ProbeResult EngineProbeRunner::MeasureParallelScan(StoreType store, int dop,
                                                   size_t rows) {
  Entry& entry = ProbeTable(store, rows, /*distinct=*/1024,
                            /*indexed=*/false, dop);
  // Same shape as the reference aggregation probe: ungrouped, unfiltered
  // SUM over the double measure column — the scan the parallel path
  // morselizes.
  AggregationQuery q;
  q.tables = {"probe"};
  q.aggregates = {{AggFn::kSum, {kD0, 0}}};
  return ProbeResult{TimeQuery(*entry.db, Query(q)),
                     store == StoreType::kColumn ? entry.compression_rate
                                                 : 1.0};
}

ProbeResult EngineProbeRunner::MeasureStitch(size_t rows) {
  // Aggregation whose filter column lives in the other vertical piece
  // (spanning) versus the same query on an unpartitioned table.
  AggregationQuery q;
  q.tables = {"probe"};
  q.aggregates = {{AggFn::kSum, {1, 0}}};
  q.predicate = {{{2, 0},
                  ValueRange::Between(Value(int32_t{0}), Value(int32_t{3}))}};
  Entry& split = StitchTable(rows, /*split=*/true);
  Entry& plain = StitchTable(rows, /*split=*/false);
  double spanning = TimeQuery(*split.db, Query(q));
  double covered = TimeQuery(*plain.db, Query(q));
  return ProbeResult{std::max(0.0, spanning - covered), 1.0};
}

}  // namespace hsdb
