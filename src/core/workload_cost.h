// WorkloadCostEstimator: maps concrete queries + catalog statistics + a
// candidate physical layout to estimated execution cost, using the cost
// model. This is the bridge between the paper's formulas (§3) and the
// advisor's search (§3.1 table level, §3.2 partitioning).
#ifndef HSDB_CORE_WORKLOAD_COST_H_
#define HSDB_CORE_WORKLOAD_COST_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/cost_model.h"

namespace hsdb {

/// A query with a weight (frequency) — the advisor's workload unit. Raw
/// query logs have weight 1 per entry; workload models reconstructed from
/// statistics carry class frequencies.
struct WeightedQuery {
  Query query;
  double weight = 1.0;
};

std::vector<WeightedQuery> ToWeighted(const std::vector<Query>& queries);

/// Candidate layout of one table plus the access-locality facts the
/// estimator needs to cost horizontal splits.
struct LayoutContext {
  TableLayout layout = TableLayout::SingleStore(StoreType::kRow);
  /// Fraction of the table's rows in the hot (upper) horizontal piece.
  double hot_row_fraction = 0.0;
  /// Fraction of point accesses (updates/point selects) hitting the hot
  /// piece; 1.0 when writes are perfectly concentrated on hot rows.
  double hot_access_fraction = 1.0;
  /// Fraction of inserts routing to the hot piece (1.0 when new keys land
  /// above the boundary, the usual case for ascending keys).
  double hot_insert_fraction = 1.0;
  /// Candidate per-column codecs (logical column order) for the table's
  /// column-store pieces. Empty means "whatever the EncodingPicker chose"
  /// (the catalog statistics' encodings). When set, the estimator costs
  /// scans with the multipliers of the codecs each query actually touches
  /// and inserts with the codecs' delta-merge re-encode term — this is the
  /// dimension the advisor's EncodingSearch explores.
  std::vector<Encoding> encodings;

  static LayoutContext SingleStore(StoreType store) {
    LayoutContext ctx;
    ctx.layout = TableLayout::SingleStore(store);
    return ctx;
  }
};

/// Supplies the candidate layout per table name.
using LayoutProvider = std::function<LayoutContext(const std::string&)>;

/// One candidate physical design of a table, labelled for the rationale:
/// the unit the joint layout+encoding search enumerates per table. The
/// PartitionAdvisor produces these (its heuristic layouts), the advisor adds
/// the plain single-store layouts and the table's current layout, and
/// EncodingSearch::SearchJoint explores the cross-product with the
/// per-column codec assignments under one shared memory budget.
struct LayoutCandidate {
  LayoutContext context;
  std::string reason;
};

/// Fraction of column `col`'s row mass that resides in a column-store piece
/// (and therefore holds an encoded segment counting toward a memory
/// budget): 0 for row-store layouts and for the non-key columns a vertical
/// split sends to the row store; reduced by the hot row fraction when a
/// horizontal split keeps hot rows in the row store. This is the weight the
/// budgeted searches apply to per-column encoded-footprint estimates — a
/// narrower hybrid split genuinely shrinks the encoded footprint.
double EncodedRowFraction(const LayoutContext& ctx, const Schema& schema,
                          ColumnId col);

/// Locality context of a table's *current* layout — the incumbent design
/// the joint search's hysteresis rule protects and the baseline the online
/// migration planner costs step gains against. The hot row fraction of a
/// horizontal split is reconstructed from the primary-key statistics (the
/// boundary relative to the key domain); the context matters only for
/// costing, the layout itself decides incumbency.
LayoutContext CurrentLayoutContext(const LogicalTable& table,
                                   const TableStatistics* stats);

/// True when the context's per-column codecs deviate from what the catalog
/// statistics carry (the store's current codecs for column-resident tables,
/// the picker's choice for hypothetical moves) on any column of a
/// column-store piece — i.e. when applying the context would re-encode.
bool EncodingsDiffer(const Schema& schema, const LayoutContext& ctx,
                     const TableStatistics* stats);

class WorkloadCostEstimator {
 public:
  WorkloadCostEstimator(const CostModel* model, const Catalog* catalog)
      : model_(model), catalog_(catalog) {}

  /// Estimated cost (ms) of one query under the given layouts.
  double QueryCost(const Query& query, const LayoutProvider& layout_of) const;

  /// Weighted sum over a workload.
  double WorkloadCost(const std::vector<WeightedQuery>& workload,
                      const LayoutProvider& layout_of) const;

  /// Convenience: every table in one store, unpartitioned.
  double WorkloadCostSingleStore(const std::vector<WeightedQuery>& workload,
                                 StoreType store) const;

  /// Convenience: unpartitioned per-table store assignment (absent tables
  /// default to `fallback`).
  double WorkloadCostAssignment(
      const std::vector<WeightedQuery>& workload,
      const std::map<std::string, StoreType>& assignment,
      StoreType fallback = StoreType::kRow) const;

 private:
  struct TableFacts {
    double rows = 0.0;
    double compression = 0.5;
    /// Mean per-encoding scan multiplier over the table's columns when it
    /// is (or would be) column-resident; 1.0 without statistics.
    double encoding_scan = 1.0;
    const TableStatistics* stats = nullptr;  // may be null
    const LogicalTable* table = nullptr;     // may be null
  };
  TableFacts FactsOf(const std::string& name) const;

  /// Scan multiplier of a column-store piece for a query touching `needed`
  /// columns: mean per-encoding multiplier over those columns, using the
  /// layout's candidate encodings when set and the statistics' encodings
  /// otherwise. Falls back to the table-wide mean (facts.encoding_scan)
  /// when neither names per-column codecs or `needed` is empty.
  double ScanEncodingMultiplier(const TableFacts& facts,
                                const LayoutContext& ctx,
                                const std::vector<ColumnId>& needed) const;

  /// Delta-merge re-encode multiplier of an insert into a column-store
  /// piece: mean re-encode multiplier over all columns (a merge re-encodes
  /// every segment).
  double InsertReencodeMultiplier(const TableFacts& facts,
                                  const LayoutContext& ctx) const;

  double PredicateSelectivity(const TableFacts& facts,
                              const std::vector<const PredicateTerm*>& terms)
      const;
  bool HasRowStoreIndex(const TableFacts& facts,
                        const std::vector<const PredicateTerm*>& terms) const;

  double AggregationQueryCost(const AggregationQuery& q,
                              const LayoutProvider& layout_of) const;
  double SelectQueryCost(const SelectQuery& q,
                         const LayoutProvider& layout_of) const;
  double InsertQueryCost(const InsertQuery& q,
                         const LayoutProvider& layout_of) const;
  double UpdateQueryCost(const UpdateQuery& q,
                         const LayoutProvider& layout_of) const;
  double DeleteQueryCost(const DeleteQuery& q,
                         const LayoutProvider& layout_of) const;

  const CostModel* model_;
  const Catalog* catalog_;
};

}  // namespace hsdb

#endif  // HSDB_CORE_WORKLOAD_COST_H_
