// Store-aware partitioning recommendation (paper §3.2 + §4 heuristics):
//  - a high insert fraction recommends a row-store partition for newly
//    arriving tuples (horizontal split at the top of the key domain);
//  - tuples frequently updated (as a whole) concentrated in a key range
//    recommend a row-store partition for that range;
//  - attributes used mainly for updates/point access ("OLTP attributes")
//    recommend a vertical row-store partition, OLAP attributes stay
//    column-oriented.
// Every heuristic candidate is validated against the cost model; the
// cheapest layout wins (including the unpartitioned table-level choice).
#ifndef HSDB_CORE_PARTITION_ADVISOR_H_
#define HSDB_CORE_PARTITION_ADVISOR_H_

#include <map>
#include <string>
#include <vector>

#include "core/workload_cost.h"
#include "workload/recorder.h"

namespace hsdb {

struct PartitionAdvisorResult {
  /// Chosen layout (+locality context) per table.
  std::map<std::string, LayoutContext> layouts;
  double estimated_cost_ms = 0.0;
  /// Human-readable per-table reasoning.
  std::vector<std::string> rationale;
  /// Every heuristic candidate that was validated per table (first entry:
  /// the unpartitioned table-level baseline). The joint layout+encoding
  /// search re-uses these as the table's layout alternatives instead of
  /// freezing the single chosen layout before the encoding search runs.
  std::map<std::string, std::vector<LayoutCandidate>> candidates;
};

class PartitionAdvisor {
 public:
  struct Options {
    /// Insert share of a table's queries that triggers a new-data partition
    /// (the paper: "if it is sufficiently high").
    double insert_fraction_threshold = 0.05;
    /// Histogram density factor for detecting hot update ranges.
    double hot_density_factor = 2.0;
    /// Minimum update mass the hot range must cover.
    double min_hot_mass = 0.5;
    /// Maximum width of a hot range (fraction of the key domain).
    double max_hot_width = 0.5;
  };

  PartitionAdvisor(const CostModel* model, const Catalog* catalog)
      : PartitionAdvisor(model, catalog, Options{}) {}
  PartitionAdvisor(const CostModel* model, const Catalog* catalog,
                   Options options)
      : model_(model),
        catalog_(catalog),
        estimator_(model, catalog),
        options_(options) {}

  /// Recommends per-table layouts. `table_level` supplies the unpartitioned
  /// baseline store per table (from TableAdvisor); `stats` provides the
  /// extended workload statistics driving the heuristics.
  PartitionAdvisorResult Recommend(
      const std::vector<WeightedQuery>& workload,
      const WorkloadStatistics& stats,
      const std::map<std::string, StoreType>& table_level) const;

 private:
  /// Heuristic layout candidates for one table; Recommend() exposes them
  /// through PartitionAdvisorResult::candidates for the joint search.
  std::vector<LayoutCandidate> Candidates(const std::string& name,
                                          const TableWorkloadStats& tstats,
                                          StoreType table_level_store) const;

  const CostModel* model_;
  const Catalog* catalog_;
  WorkloadCostEstimator estimator_;
  Options options_;
};

}  // namespace hsdb

#endif  // HSDB_CORE_PARTITION_ADVISOR_H_
