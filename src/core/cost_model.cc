#include "core/cost_model.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"

namespace hsdb {

CostModelParams CostModelParams::Default() {
  CostModelParams p;

  // Row store: strided scans make aggregation expensive; writes and point
  // access are cheap.
  StoreCostParams& rs = p.of(StoreType::kRow);
  rs.base_agg[static_cast<int>(AggFn::kSum)] = 8.0;
  rs.base_agg[static_cast<int>(AggFn::kAvg)] = 8.0;
  rs.base_agg[static_cast<int>(AggFn::kMin)] = 8.0;
  rs.base_agg[static_cast<int>(AggFn::kMax)] = 8.0;
  rs.base_agg[static_cast<int>(AggFn::kCount)] = 0.5;
  rs.c_group_by = 6.0;
  rs.c_agg_filter = 1.5;
  rs.f_rows_agg = LinearFn{0.0, 1e-6};  // 1.0 at the 1M-row reference
  rs.f_compression_agg = PiecewiseLinearFn::Constant(1.0);
  rs.base_select = 4.0;
  rs.base_point_select = 0.003;
  rs.f_selected_columns = LinearFn{1.0, 0.0};  // rows are read whole anyway
  rs.f_selectivity_indexed = LinearFn{0.01, 20.0};
  rs.f_selectivity_scan = LinearFn{1.0, 2.0};  // scan dominated by the pass
  rs.f_rows_select = LinearFn{0.0, 1e-6};
  rs.base_insert = 0.002;
  rs.f_rows_insert = LinearFn{1.0, 1e-9};
  rs.base_update = 0.003;
  rs.f_affected_columns = LinearFn{1.0, 0.02};
  rs.f_affected_rows = LinearFn{0.0, 1.0};
  rs.f_rows_update = LinearFn{1.0, 1e-9};
  rs.f_rows_probe = LinearFn{0.0, 1e-6};
  rs.f_rows_build = LinearFn{0.9, 1e-4};

  // Column store: packed scans make aggregation cheap; writes pay delta
  // maintenance and merges, point access pays reconstruction.
  StoreCostParams& cs = p.of(StoreType::kColumn);
  cs.base_agg[static_cast<int>(AggFn::kSum)] = 2.5;
  cs.base_agg[static_cast<int>(AggFn::kAvg)] = 2.5;
  cs.base_agg[static_cast<int>(AggFn::kMin)] = 2.5;
  cs.base_agg[static_cast<int>(AggFn::kMax)] = 2.5;
  cs.base_agg[static_cast<int>(AggFn::kCount)] = 0.5;
  cs.c_group_by = 10.0;
  cs.c_agg_filter = 1.4;
  cs.f_rows_agg = LinearFn{0.0, 1e-6};
  cs.f_compression_agg = PiecewiseLinearFn::FromKnots(
      {0.05, 0.3, 0.7, 1.0}, {0.7, 0.9, 1.05, 1.15});
  cs.base_select = 2.0;
  cs.base_point_select = 0.006;  // per-column reconstruction
  cs.f_selected_columns = LinearFn{0.9, 0.05};  // tuple reconstruction
  cs.f_selectivity_indexed = LinearFn{0.05, 10.0};  // dictionary position scan
  cs.f_selectivity_scan = LinearFn{0.05, 10.0};     // implicit index always
  cs.f_rows_select = LinearFn{0.0, 1e-6};
  cs.base_insert = 0.02;
  cs.f_rows_insert = LinearFn{1.0, 5e-9};
  cs.base_update = 0.04;
  cs.f_affected_columns = LinearFn{1.0, 0.05};
  cs.f_affected_rows = LinearFn{0.0, 1.0};
  cs.f_rows_update = LinearFn{1.0, 5e-9};
  cs.f_rows_probe = LinearFn{0.0, 1.2e-6};
  cs.f_rows_build = LinearFn{0.9, 1.2e-4};
  // Analytic decode shape: run replay beats id+dictionary indirection,
  // base+delta adds sit between, plain vectors lose the bandwidth savings.
  // Calibration replaces these with measured per-codec throughput.
  cs.c_encoding_scan[static_cast<int>(Encoding::kDictionary)] = 1.0;
  cs.c_encoding_scan[static_cast<int>(Encoding::kRle)] = 0.55;
  cs.c_encoding_scan[static_cast<int>(Encoding::kFrameOfReference)] = 0.8;
  cs.c_encoding_scan[static_cast<int>(Encoding::kRaw)] = 1.25;
  // Analytic re-encode shape: the dictionary pays the profiling sort plus
  // id packing, FOR repacks deltas, RLE emits runs, raw is a plain copy.
  // Calibration replaces these with measured per-codec encode throughput.
  cs.c_encoding_reencode[static_cast<int>(Encoding::kDictionary)] = 1.0;
  cs.c_encoding_reencode[static_cast<int>(Encoding::kRle)] = 0.6;
  cs.c_encoding_reencode[static_cast<int>(Encoding::kFrameOfReference)] = 0.75;
  cs.c_encoding_reencode[static_cast<int>(Encoding::kRaw)] = 0.4;
  cs.c_merge_share = 0.3;
  // Analytic parallel shape: row-store strided scans saturate memory
  // bandwidth earlier than the column store's packed decode, so each extra
  // core contributes less. Calibration replaces these with the measured
  // parallel-scan speedup.
  rs.c_parallel_core = 0.6;
  rs.c_parallel_merge_ms = 0.02;
  cs.c_parallel_core = 0.75;
  cs.c_parallel_merge_ms = 0.01;

  // Shared-scan batches amortize the column store's decode pass almost
  // fully; the row store's tuple walk is shared too, but it was never the
  // dominant term, so less of the per-query cost disappears.
  rs.c_batch_scan_share = 0.55;
  cs.c_batch_scan_share = 0.3;

  p.base_join[0][0] = 1.0;
  p.base_join[0][1] = 1.15;
  p.base_join[1][0] = 0.85;
  p.base_join[1][1] = 0.95;
  p.f_stitch = LinearFn{0.5, 2e-3};
  p.c_union = 0.05;
  return p;
}

std::string CostModelParams::ToString() const {
  std::ostringstream os;
  for (int s = 0; s < kNumStoreTypes; ++s) {
    const StoreCostParams& sp = store[s];
    os << StoreTypeName(static_cast<StoreType>(s)) << ": base_sum="
       << sp.base_agg[0] << " c_group=" << sp.c_group_by
       << " f_rows_agg=" << sp.f_rows_agg.ToString()
       << " f_compr=" << sp.f_compression_agg.ToString()
       << " base_select=" << sp.base_select
       << " base_insert=" << sp.base_insert
       << " base_update=" << sp.base_update << " c_enc_scan={";
    for (int e = 0; e < kNumEncodings; ++e) {
      os << (e > 0 ? "," : "") << sp.c_encoding_scan[e];
    }
    os << "} c_enc_reencode={";
    for (int e = 0; e < kNumEncodings; ++e) {
      os << (e > 0 ? "," : "") << sp.c_encoding_reencode[e];
    }
    os << "}*" << sp.c_merge_share << " c_par=" << sp.c_parallel_core << "+"
       << sp.c_parallel_merge_ms << "ms"
       << " c_batch_share=" << sp.c_batch_scan_share << "\n";
  }
  os << "base_join={" << base_join[0][0] << "," << base_join[0][1] << ";"
     << base_join[1][0] << "," << base_join[1][1] << "}"
     << " f_stitch=" << f_stitch.ToString();
  return os.str();
}

namespace {

/// Adjustment multipliers must never drive a cost negative; measured fits
/// can dip below zero when extrapolating far left of the calibrated range.
double ClampMultiplier(double m) { return std::max(m, 1e-4); }

// Version history (docs/ARCHITECTURE.md "Calibration cache lifecycle"):
// v2 added the per-codec scan terms (c_encoding_scan), v3 the delta-merge
// re-encoding terms (c_encoding_reencode, c_merge_share). v4 changes no
// field but marks the SIMD decode kernels (storage/compression/simd/):
// they shift the measured per-codec scan/re-encode throughput, so
// scalar-era v1-v3 calibrations are rejected and caches recalibrate with
// the vectorized engine. v5 adds the morsel-parallel scan terms
// (c_parallel_core, c_parallel_merge_ms); pre-parallel caches are rejected
// so they recalibrate with the parallel probe. v6 adds the shared-scan
// batch term (c_batch_scan_share) the serving front-end's amortized
// per-query costs divide by.
constexpr char kSerializationMagic[] = "hsdb_cost_model_v6";

void PutFn(std::ostream& os, const LinearFn& fn) {
  os << fn.intercept << " " << fn.slope << "\n";
}

bool GetFn(std::istream& is, LinearFn* fn) {
  return static_cast<bool>(is >> fn->intercept >> fn->slope);
}

void PutPwl(std::ostream& os, const PiecewiseLinearFn& fn) {
  os << fn.num_knots();
  for (size_t i = 0; i < fn.num_knots(); ++i) {
    os << " " << fn.xs()[i] << " " << fn.ys()[i];
  }
  os << "\n";
}

bool GetPwl(std::istream& is, PiecewiseLinearFn* fn) {
  size_t n;
  if (!(is >> n) || n == 0 || n > 10'000) return false;
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(is >> xs[i] >> ys[i])) return false;
  }
  *fn = PiecewiseLinearFn::FromKnots(std::move(xs), std::move(ys));
  return true;
}

}  // namespace

std::string CostModelParams::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << kSerializationMagic << "\n";
  for (int s = 0; s < kNumStoreTypes; ++s) {
    const StoreCostParams& sp = store[s];
    for (double b : sp.base_agg) os << b << " ";
    os << "\n";
    for (double c : sp.c_data_type) os << c << " ";
    os << "\n";
    os << sp.c_group_by << " " << sp.c_agg_filter << "\n";
    PutFn(os, sp.f_rows_agg);
    PutPwl(os, sp.f_compression_agg);
    os << sp.base_select << " " << sp.base_point_select << "\n";
    PutFn(os, sp.f_selected_columns);
    PutFn(os, sp.f_selectivity_indexed);
    PutFn(os, sp.f_selectivity_scan);
    PutFn(os, sp.f_rows_select);
    os << sp.base_insert << "\n";
    PutFn(os, sp.f_rows_insert);
    os << sp.base_update << "\n";
    PutFn(os, sp.f_affected_columns);
    PutFn(os, sp.f_affected_rows);
    PutFn(os, sp.f_rows_update);
    PutFn(os, sp.f_rows_probe);
    PutFn(os, sp.f_rows_build);
    for (double c : sp.c_encoding_scan) os << c << " ";
    os << "\n";
    for (double c : sp.c_encoding_reencode) os << c << " ";
    os << sp.c_merge_share << "\n";
    os << sp.c_parallel_core << " " << sp.c_parallel_merge_ms << "\n";
    os << sp.c_batch_scan_share << "\n";
  }
  for (int f = 0; f < kNumStoreTypes; ++f) {
    for (int d = 0; d < kNumStoreTypes; ++d) {
      os << base_join[f][d] << " ";
    }
  }
  os << "\n";
  PutFn(os, f_stitch);
  os << c_union << "\n";
  return os.str();
}

Result<CostModelParams> CostModelParams::Deserialize(
    const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  if (!(is >> magic) || magic != kSerializationMagic) {
    return Status::InvalidArgument("bad cost-model serialization header");
  }
  CostModelParams p;
  auto fail = [] {
    return Status::InvalidArgument("truncated cost-model serialization");
  };
  for (int s = 0; s < kNumStoreTypes; ++s) {
    StoreCostParams& sp = p.store[s];
    for (double& b : sp.base_agg) {
      if (!(is >> b)) return fail();
    }
    for (double& c : sp.c_data_type) {
      if (!(is >> c)) return fail();
    }
    if (!(is >> sp.c_group_by >> sp.c_agg_filter)) return fail();
    if (!GetFn(is, &sp.f_rows_agg)) return fail();
    if (!GetPwl(is, &sp.f_compression_agg)) return fail();
    if (!(is >> sp.base_select >> sp.base_point_select)) return fail();
    if (!GetFn(is, &sp.f_selected_columns)) return fail();
    if (!GetFn(is, &sp.f_selectivity_indexed)) return fail();
    if (!GetFn(is, &sp.f_selectivity_scan)) return fail();
    if (!GetFn(is, &sp.f_rows_select)) return fail();
    if (!(is >> sp.base_insert)) return fail();
    if (!GetFn(is, &sp.f_rows_insert)) return fail();
    if (!(is >> sp.base_update)) return fail();
    if (!GetFn(is, &sp.f_affected_columns)) return fail();
    if (!GetFn(is, &sp.f_affected_rows)) return fail();
    if (!GetFn(is, &sp.f_rows_update)) return fail();
    if (!GetFn(is, &sp.f_rows_probe)) return fail();
    if (!GetFn(is, &sp.f_rows_build)) return fail();
    for (double& c : sp.c_encoding_scan) {
      if (!(is >> c)) return fail();
    }
    for (double& c : sp.c_encoding_reencode) {
      if (!(is >> c)) return fail();
    }
    if (!(is >> sp.c_merge_share)) return fail();
    if (!(is >> sp.c_parallel_core >> sp.c_parallel_merge_ms)) return fail();
    if (!(is >> sp.c_batch_scan_share)) return fail();
  }
  for (int f = 0; f < kNumStoreTypes; ++f) {
    for (int d = 0; d < kNumStoreTypes; ++d) {
      if (!(is >> p.base_join[f][d])) return fail();
    }
  }
  if (!GetFn(is, &p.f_stitch)) return fail();
  if (!(is >> p.c_union)) return fail();
  return p;
}

double CostModel::AggregationCost(StoreType store,
                                  const std::vector<AggSpec>& aggs,
                                  bool grouped, bool filtered, double rows,
                                  double compression_rate, double selectivity,
                                  double encoding_scan) const {
  const StoreCostParams& sp = params_.of(store);
  // Each aggregate contributes its base cost adjusted to its data type
  // (the paper's two-aggregate example in §3.1).
  double base = 0.0;
  for (const AggSpec& agg : aggs) {
    base += sp.base_agg[static_cast<int>(agg.fn)] *
            sp.c_data_type[static_cast<int>(agg.type)];
  }
  double compr =
      store == StoreType::kColumn
          ? ClampMultiplier(sp.f_compression_agg(compression_rate)) *
                ClampMultiplier(encoding_scan)
          : 1.0;
  // Aggregation work runs over the rows surviving the predicate...
  double work_rows = filtered ? selectivity * rows : rows;
  double cost = base;
  if (grouped) cost *= sp.c_group_by;
  cost *= ClampMultiplier(sp.f_rows_agg(work_rows));
  cost *= compr;
  // ... while the filter pass itself scans the whole table.
  if (filtered) {
    cost += sp.base_agg[static_cast<int>(AggFn::kSum)] * sp.c_agg_filter *
            ClampMultiplier(sp.f_rows_agg(rows)) * compr;
  }
  // Morsel-parallel scan: the whole filter+aggregate pass parallelizes;
  // merging per-morsel partials is coordinator-side overhead.
  if (dop_ > 1) {
    cost = cost / ParallelSpeedup(sp) + sp.c_parallel_merge_ms;
  }
  // Serving amortization: a shared-scan batch of width w runs this query's
  // filter + aggregation pass once per batch, not once per query.
  return cost / BatchSpeedup(sp);
}

double CostModel::ParallelSpeedup(const StoreCostParams& sp) const {
  if (dop_ <= 1) return 1.0;
  return 1.0 + std::max(sp.c_parallel_core, 0.0) * (dop_ - 1);
}

double CostModel::BatchSpeedup(const StoreCostParams& sp) const {
  if (batch_width_ <= 1) return 1.0;
  double share = std::min(std::max(sp.c_batch_scan_share, 0.0), 1.0);
  double w = static_cast<double>(batch_width_);
  return w / (1.0 + share * (w - 1.0));
}

double CostModel::JoinAggregationCost(
    StoreType fact_store, const std::vector<AggSpec>& aggs, bool grouped,
    bool filtered, double fact_rows, double fact_compression,
    const std::vector<JoinSide>& dims, double selectivity,
    double encoding_scan) const {
  const StoreCostParams& fp = params_.of(fact_store);
  double base = 0.0;
  for (const AggSpec& agg : aggs) {
    base += fp.base_agg[static_cast<int>(agg.fn)] *
            fp.c_data_type[static_cast<int>(agg.type)];
  }
  double fact_compr =
      fact_store == StoreType::kColumn
          ? ClampMultiplier(fp.f_compression_agg(fact_compression)) *
                ClampMultiplier(encoding_scan)
          : 1.0;
  // Probe work runs over the rows surviving the fact-side predicate.
  double probe_rows = filtered ? selectivity * fact_rows : fact_rows;
  double cost = base;
  if (grouped) cost *= fp.c_group_by;
  cost *= ClampMultiplier(fp.f_rows_probe(probe_rows));
  cost *= fact_compr;
  if (filtered) {
    cost += fp.base_agg[static_cast<int>(AggFn::kSum)] * fp.c_agg_filter *
            ClampMultiplier(fp.f_rows_probe(fact_rows)) * fact_compr;
  }
  // Per-dimension adjustments: store-combination base cost and build-side
  // scaling (the paper's BaseSUMCosts^{RS,CS} with f^{CS}_rows(100000)).
  for (const JoinSide& dim : dims) {
    const StoreCostParams& dp = params_.of(dim.store);
    cost *= params_.base_join[static_cast<int>(fact_store)]
                             [static_cast<int>(dim.store)];
    cost *= ClampMultiplier(dp.f_rows_build(dim.rows));
    if (dim.store == StoreType::kColumn) {
      cost *= ClampMultiplier(dp.f_compression_agg(dim.compression_rate));
    }
  }
  return cost;
}

double CostModel::SelectCost(StoreType store, size_t selected_columns,
                             double selectivity, bool indexed, double rows,
                             double encoding_scan) const {
  const StoreCostParams& sp = params_.of(store);
  double cost = sp.base_select;
  if (store == StoreType::kColumn) cost *= ClampMultiplier(encoding_scan);
  cost *= ClampMultiplier(
      sp.f_selected_columns(static_cast<double>(selected_columns)));
  // The column store's dictionary acts as an implicit index, so both paths
  // use the "indexed" function there; the row store degrades to a scan when
  // no index is available (paper §3.1).
  const LinearFn& f_sel = indexed || store == StoreType::kColumn
                              ? sp.f_selectivity_indexed
                              : sp.f_selectivity_scan;
  cost *= ClampMultiplier(f_sel(selectivity));
  cost *= ClampMultiplier(sp.f_rows_select(rows));
  // Morsel-parallel scan. Row-store index-seeded selections stay serial in
  // the engine (the index path is already sub-linear), so only scan-shaped
  // selections are scaled.
  if (dop_ > 1 && !(store == StoreType::kRow && indexed)) {
    cost = cost / ParallelSpeedup(sp) + sp.c_parallel_merge_ms;
  }
  // Scan-shaped selections share a batch's decode pass; index-seeded
  // row-store selections are delegated out of shared groups and stay
  // unscaled.
  if (!(store == StoreType::kRow && indexed)) {
    cost /= BatchSpeedup(sp);
  }
  return cost;
}

double CostModel::EncodingScanMultiplier(StoreType store,
                                         Encoding encoding) const {
  if (store != StoreType::kColumn) return 1.0;
  return ClampMultiplier(
      params_.of(store).c_encoding_scan[static_cast<int>(encoding)]);
}

double CostModel::PointSelectCost(StoreType store,
                                  size_t selected_columns) const {
  const StoreCostParams& sp = params_.of(store);
  return sp.base_point_select *
         ClampMultiplier(
             sp.f_selected_columns(static_cast<double>(selected_columns)));
}

double CostModel::EncodingReencodeMultiplier(StoreType store,
                                             Encoding encoding) const {
  if (store != StoreType::kColumn) return 1.0;
  return ClampMultiplier(
      params_.of(store).c_encoding_reencode[static_cast<int>(encoding)]);
}

double CostModel::InsertCost(StoreType store, double rows,
                             double encoding_reencode) const {
  const StoreCostParams& sp = params_.of(store);
  double cost = sp.base_insert * ClampMultiplier(sp.f_rows_insert(rows));
  // The re-encode term shifts only the merge share of the amortized insert
  // cost: cheaper codecs (raw copy, run emission) make merges — not the
  // delta append itself — faster.
  if (store == StoreType::kColumn && sp.c_merge_share > 0.0) {
    cost *= ClampMultiplier(
        1.0 + sp.c_merge_share * (ClampMultiplier(encoding_reencode) - 1.0));
  }
  return cost;
}

double CostModel::UpdateCost(StoreType store, size_t affected_columns,
                             double affected_rows, double rows) const {
  const StoreCostParams& sp = params_.of(store);
  double cost = sp.base_update;
  cost *= ClampMultiplier(
      sp.f_affected_columns(static_cast<double>(affected_columns)));
  cost *= std::max(sp.f_affected_rows(affected_rows), 0.0);
  cost *= ClampMultiplier(sp.f_rows_update(rows));
  return cost;
}

double CostModel::DeleteCost(StoreType store, double affected_rows,
                             double rows) const {
  // A delete behaves like a one-column update of the affected rows.
  return UpdateCost(store, 1, affected_rows, rows);
}

}  // namespace hsdb
