// Table-level store recommendation (paper §3.1): choose row or column store
// per table so that the estimated workload cost is minimal. Join queries
// couple tables, so the advisor searches over assignments — exhaustively for
// small schemas, with hill climbing beyond that.
#ifndef HSDB_CORE_TABLE_ADVISOR_H_
#define HSDB_CORE_TABLE_ADVISOR_H_

#include <map>
#include <string>
#include <vector>

#include "core/workload_cost.h"

namespace hsdb {

struct TableAdvisorResult {
  std::map<std::string, StoreType> assignment;
  double estimated_cost_ms = 0.0;
  double rs_only_cost_ms = 0.0;
  double cs_only_cost_ms = 0.0;
  size_t evaluated_assignments = 0;
  bool exhaustive = true;
};

class TableAdvisor {
 public:
  struct Options {
    /// Exhaustive search up to this many tables (2^n assignments); hill
    /// climbing with restarts beyond.
    size_t exhaustive_limit = 14;
    int hill_climb_restarts = 4;
    uint64_t seed = 99;
  };

  TableAdvisor(const CostModel* model, const Catalog* catalog)
      : TableAdvisor(model, catalog, Options{}) {}
  TableAdvisor(const CostModel* model, const Catalog* catalog,
               Options options)
      : estimator_(model, catalog), options_(options) {}

  TableAdvisorResult Recommend(
      const std::vector<WeightedQuery>& workload) const;

 private:
  WorkloadCostEstimator estimator_;
  Options options_;
};

}  // namespace hsdb

#endif  // HSDB_CORE_TABLE_ADVISOR_H_
