#include "core/encoding_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "catalog/statistics.h"

namespace hsdb {

namespace {

constexpr double kCostEps = 1e-12;

/// Per-table search state: candidate codecs, footprints and the current
/// choice per column.
struct TableState {
  std::string name;
  std::vector<std::vector<Encoding>> candidates;  // per column
  std::vector<std::vector<double>> bytes;         // parallel to candidates
  std::vector<size_t> choice;                     // candidate index per column
  std::vector<size_t> picker_choice;
  /// The codec the statistics carry: the store's current codec for
  /// column-resident tables, the picker's estimate otherwise — the
  /// incumbent assignment the hysteresis rule protects.
  std::vector<size_t> incumbent_choice;
  /// Whether the column lands in a column-store piece (vertical row-store
  /// columns are excluded: they are not encoded and carry no footprint).
  std::vector<bool> searchable;

  std::vector<Encoding> Encodings() const {
    std::vector<Encoding> out(choice.size());
    for (size_t c = 0; c < choice.size(); ++c) {
      out[c] = candidates[c][choice[c]];
    }
    return out;
  }

  double FootprintBytes() const {
    double total = 0.0;
    for (size_t c = 0; c < choice.size(); ++c) {
      if (searchable[c]) total += bytes[c][choice[c]];
    }
    return total;
  }
};

/// One searchable (table, column) coordinate.
struct Item {
  size_t table;
  size_t column;
};

}  // namespace

EncodingSearchResult EncodingSearch::Search(
    const std::vector<WeightedQuery>& workload,
    const std::map<std::string, LayoutContext>& layouts) const {
  EncodingSearchResult result;

  // ---- Candidate sets: the picker's profile rules prune per column -------
  std::vector<TableState> tables;
  for (const auto& [name, ctx] : layouts) {
    if (!HasColumnStorePiece(ctx.layout)) continue;
    const TableStatistics* stats = catalog_->GetStatistics(name);
    const LogicalTable* table = catalog_->GetTable(name);
    if (stats == nullptr || stats->columns.empty() || table == nullptr) {
      continue;
    }
    const Schema& schema = table->schema();
    const compression::EncodingPicker picker(options_.picker);

    TableState state;
    state.name = name;
    const size_t n = stats->columns.size();
    state.candidates.resize(n);
    state.bytes.resize(n);
    state.choice.resize(n);
    state.picker_choice.resize(n);
    state.incumbent_choice.resize(n);
    state.searchable.assign(n, true);
    for (ColumnId c = 0; c < n; ++c) {
      compression::EncodingProfile profile =
          StatisticsEncodingProfile(stats->columns[c], stats->row_count);
      std::vector<Encoding> candidates =
          compression::CandidateEncodings(profile, options_.picker);
      Encoding picked = picker.Pick(profile);
      state.candidates[c] = candidates;
      state.bytes[c].reserve(candidates.size());
      for (Encoding e : candidates) {
        double b = compression::EstimateEncodedBytes(e, profile);
        if (!std::isfinite(b)) b = std::numeric_limits<double>::max();
        state.bytes[c].push_back(b);
      }
      size_t picked_index = 0;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i] == picked) picked_index = i;
      }
      state.picker_choice[c] = picked_index;
      // The incumbent falls back to the picker when the stats codec is not
      // a candidate (e.g. RLE pruned after the run structure degraded).
      state.incumbent_choice[c] = picked_index;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i] == stats->columns[c].encoding) {
          state.incumbent_choice[c] = i;
        }
      }
      state.choice[c] = picked_index;
      // Vertical row-store columns are not column-encoded (the replicated
      // primary key stays encoded in the base piece).
      state.searchable[c] = ColumnInColumnStorePiece(ctx.layout, schema, c);
    }
    tables.push_back(std::move(state));
  }
  if (tables.empty()) return result;

  std::vector<Item> items;
  size_t combinations = 1;
  bool overflow = false;
  for (size_t t = 0; t < tables.size(); ++t) {
    for (size_t c = 0; c < tables[t].choice.size(); ++c) {
      if (!tables[t].searchable[c] || tables[t].candidates[c].size() < 2) {
        continue;
      }
      items.push_back(Item{t, c});
      if (!overflow) {
        combinations *= tables[t].candidates[c].size();
        if (combinations > options_.exact_combination_limit) overflow = true;
      }
    }
  }

  // ---- Evaluation under the current per-table choices --------------------
  // Incremental: a candidate assignment differs from the previously
  // evaluated one in a few columns of a few tables, so only queries
  // touching those tables are re-costed. Queries touching no searched
  // table contribute a constant computed once.
  std::map<std::string, size_t> index_of;
  for (size_t t = 0; t < tables.size(); ++t) {
    index_of.emplace(tables[t].name, t);
  }
  auto layout_provider = [&](const std::string& name) {
    auto it = layouts.find(name);
    LayoutContext ctx = it == layouts.end()
                            ? LayoutContext::SingleStore(StoreType::kRow)
                            : it->second;
    auto ti = index_of.find(name);
    if (ti != index_of.end()) {
      ctx.encodings = tables[ti->second].Encodings();
    }
    return ctx;
  };

  struct QueryEval {
    const WeightedQuery* wq = nullptr;
    std::vector<size_t> touched;  // searched-table indices
    double cost = 0.0;            // weighted, as of the last evaluate()
  };
  std::vector<QueryEval> affected;
  double running_total = 0.0;  // fixed queries now, + affected after eval
  for (const WeightedQuery& wq : workload) {
    QueryEval entry;
    entry.wq = &wq;
    for (const std::string& name : TablesOf(wq.query)) {
      auto it = index_of.find(name);
      if (it != index_of.end() &&
          std::find(entry.touched.begin(), entry.touched.end(),
                    it->second) == entry.touched.end()) {
        entry.touched.push_back(it->second);
      }
    }
    if (entry.touched.empty()) {
      running_total += wq.weight * estimator_.QueryCost(wq.query,
                                                        layout_provider);
    } else {
      affected.push_back(std::move(entry));
    }
  }

  // Tables whose encodings changed since the last evaluate(). Mutation
  // sites mark their table; evaluate() consumes the set.
  size_t evaluated = 0;
  bool all_dirty = true;
  std::vector<size_t> dirty;
  auto mark_dirty = [&](size_t t) {
    if (!all_dirty &&
        std::find(dirty.begin(), dirty.end(), t) == dirty.end()) {
      dirty.push_back(t);
    }
  };
  auto evaluate = [&]() {
    ++evaluated;
    for (QueryEval& entry : affected) {
      bool stale = all_dirty;
      for (size_t t : entry.touched) {
        if (stale) break;
        stale = std::find(dirty.begin(), dirty.end(), t) != dirty.end();
      }
      if (!stale) continue;
      running_total -= entry.cost;
      entry.cost = entry.wq->weight *
                   estimator_.QueryCost(entry.wq->query, layout_provider);
      running_total += entry.cost;
    }
    all_dirty = false;
    dirty.clear();
    return running_total;
  };
  auto mark_all_dirty = [&]() {
    all_dirty = true;
    dirty.clear();
  };
  auto total_footprint = [&]() {
    double total = 0.0;
    for (const TableState& state : tables) total += state.FootprintBytes();
    return total;
  };

  // Feasibility floor: every searchable column at its smallest codec.
  double min_footprint = 0.0;
  for (const TableState& state : tables) {
    for (size_t c = 0; c < state.choice.size(); ++c) {
      if (!state.searchable[c]) continue;
      min_footprint +=
          *std::min_element(state.bytes[c].begin(), state.bytes[c].end());
    }
  }
  result.min_footprint_bytes = min_footprint;

  // ---- Picker and incumbent baselines ------------------------------------
  for (TableState& state : tables) state.choice = state.picker_choice;
  mark_all_dirty();
  result.picker_cost_ms = evaluate();
  result.picker_footprint_bytes = total_footprint();

  bool incumbent_is_picker = true;
  for (const TableState& state : tables) {
    incumbent_is_picker =
        incumbent_is_picker && state.incumbent_choice == state.picker_choice;
  }
  double incumbent_cost = result.picker_cost_ms;
  double incumbent_footprint = result.picker_footprint_bytes;
  if (!incumbent_is_picker) {
    for (TableState& state : tables) state.choice = state.incumbent_choice;
    mark_all_dirty();
    incumbent_cost = evaluate();
    incumbent_footprint = total_footprint();
  }

  const std::optional<double>& budget = options_.memory_budget_bytes;
  auto feasible_at = [&](double footprint) {
    return !budget.has_value() || footprint <= *budget + 1e-6;
  };

  // The incumbent preloads the winner: the search must earn any deviation.
  double best_cost = incumbent_cost;
  double best_footprint = incumbent_footprint;
  std::vector<std::vector<size_t>> best_choice;
  auto snapshot = [&]() {
    best_choice.clear();
    for (const TableState& state : tables) best_choice.push_back(state.choice);
  };
  for (TableState& state : tables) state.choice = state.incumbent_choice;
  snapshot();

  if (!overflow && !items.empty()) {
    // ---- Exact enumeration over the candidate cross-product --------------
    result.exact = true;
    bool any_feasible = feasible_at(incumbent_footprint);
    // Enumerate with non-item columns pinned at the picker choice (their
    // candidate set is a singleton anyway).
    std::vector<size_t> odometer(items.size(), 0);
    for (const Item& item : items) {
      tables[item.table].choice[item.column] = 0;
    }
    mark_all_dirty();
    bool done = false;
    while (!done) {
      double footprint = total_footprint();
      if (feasible_at(footprint)) {
        double cost = evaluate();
        bool better =
            !any_feasible || cost < best_cost - kCostEps ||
            (cost <= best_cost + kCostEps && footprint < best_footprint);
        if (better) {
          best_cost = cost;
          best_footprint = footprint;
          snapshot();
        }
        any_feasible = true;
      }
      // Advance the odometer.
      size_t i = 0;
      for (; i < items.size(); ++i) {
        size_t limit =
            tables[items[i].table].candidates[items[i].column].size();
        size_t next = odometer[i] + 1;
        odometer[i] = next < limit ? next : 0;
        tables[items[i].table].choice[items[i].column] = odometer[i];
        mark_dirty(items[i].table);
        if (next < limit) break;
      }
      done = i == items.size();
    }
    if (!any_feasible) {
      // Budget below the floor: fall back to the minimal footprint.
      for (TableState& state : tables) {
        for (size_t c = 0; c < state.choice.size(); ++c) {
          if (!state.searchable[c]) continue;
          state.choice[c] = static_cast<size_t>(
              std::min_element(state.bytes[c].begin(), state.bytes[c].end()) -
              state.bytes[c].begin());
        }
      }
      mark_all_dirty();
      best_cost = evaluate();
      best_footprint = total_footprint();
      snapshot();
      result.feasible = false;
    }
  } else {
    // ---- Greedy knapsack --------------------------------------------------
    // Phase 1: coordinate descent on workload cost, budget ignored. Starting
    // from the picker's assignment this can only improve the cost.
    for (TableState& state : tables) state.choice = state.picker_choice;
    mark_all_dirty();
    double cur_cost = result.picker_cost_ms;
    bool improved = true;
    int passes = 0;
    while (improved && passes++ < 8) {
      improved = false;
      for (const Item& item : items) {
        TableState& state = tables[item.table];
        size_t original = state.choice[item.column];
        size_t best_i = original;
        double best_i_cost = cur_cost;
        double best_i_bytes = state.bytes[item.column][original];
        for (size_t i = 0; i < state.candidates[item.column].size(); ++i) {
          if (i == original) continue;
          state.choice[item.column] = i;
          mark_dirty(item.table);
          double cost = evaluate();
          double b = state.bytes[item.column][i];
          if (cost < best_i_cost - kCostEps ||
              (cost <= best_i_cost + kCostEps && b < best_i_bytes)) {
            best_i = i;
            best_i_cost = cost;
            best_i_bytes = b;
          }
        }
        state.choice[item.column] = best_i;
        mark_dirty(item.table);
        if (best_i != original) {
          cur_cost = best_i_cost;
          improved = true;
        }
      }
    }

    // Phase 2: repair the budget — repeatedly take the swap to a smaller
    // codec with the best cost-increase / bytes-saved ratio (the classic
    // greedy knapsack eviction over per-column footprint deltas).
    double cur_footprint = total_footprint();
    while (budget.has_value() && cur_footprint > *budget + 1e-6) {
      double best_ratio = std::numeric_limits<double>::infinity();
      double best_saved = 0.0;
      size_t best_item = items.size();
      size_t best_cand = 0;
      double best_swap_cost = cur_cost;
      for (size_t n = 0; n < items.size(); ++n) {
        TableState& state = tables[items[n].table];
        size_t cur = state.choice[items[n].column];
        double cur_bytes = state.bytes[items[n].column][cur];
        for (size_t i = 0; i < state.candidates[items[n].column].size();
             ++i) {
          double saved = cur_bytes - state.bytes[items[n].column][i];
          if (saved <= 0.0) continue;
          state.choice[items[n].column] = i;
          mark_dirty(items[n].table);
          double cost = evaluate();
          state.choice[items[n].column] = cur;
          mark_dirty(items[n].table);
          double ratio = (cost - cur_cost) / saved;
          if (ratio < best_ratio ||
              (ratio <= best_ratio + kCostEps && saved > best_saved)) {
            best_ratio = ratio;
            best_saved = saved;
            best_item = n;
            best_cand = i;
            best_swap_cost = cost;
          }
        }
      }
      if (best_item == items.size()) break;  // nothing left to shrink
      tables[items[best_item].table].choice[items[best_item].column] =
          best_cand;
      mark_dirty(items[best_item].table);
      cur_cost = best_swap_cost;
      cur_footprint -= best_saved;
    }

    best_cost = cur_cost;
    best_footprint = total_footprint();
    result.feasible = feasible_at(best_footprint);
    snapshot();

    // Never-worse guarantee: when the picker's own assignment is feasible
    // and cheaper, keep it.
    if (feasible_at(result.picker_footprint_bytes) &&
        result.picker_cost_ms < best_cost - kCostEps) {
      for (size_t t = 0; t < tables.size(); ++t) {
        tables[t].choice = tables[t].picker_choice;
      }
      best_cost = result.picker_cost_ms;
      best_footprint = result.picker_footprint_bytes;
      result.feasible = true;
      snapshot();
    }
  }

  // ---- Hysteresis: recommendation stability ------------------------------
  // Keep the incumbent encodings unless the winner improves materially.
  // Guarded so the never-worse-than-picker and budget guarantees survive:
  // the incumbent must itself be feasible and no costlier than the picker.
  if (feasible_at(incumbent_footprint) &&
      incumbent_cost <= result.picker_cost_ms + kCostEps &&
      best_cost > incumbent_cost -
                      options_.min_improvement * incumbent_cost) {
    for (TableState& state : tables) state.choice = state.incumbent_choice;
    best_cost = incumbent_cost;
    best_footprint = incumbent_footprint;
    result.feasible = true;
    snapshot();
  }

  // ---- Materialize the winner -------------------------------------------
  for (size_t t = 0; t < tables.size(); ++t) {
    tables[t].choice = best_choice[t];
    TableEncodingAssignment assignment;
    assignment.encodings = tables[t].Encodings();
    assignment.footprint_bytes = tables[t].FootprintBytes();
    result.tables.emplace(tables[t].name, std::move(assignment));
  }
  result.cost_ms = best_cost;
  result.footprint_bytes = best_footprint;
  result.evaluated_assignments = evaluated;
  return result;
}

}  // namespace hsdb
