#include "core/encoding_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "catalog/statistics.h"

namespace hsdb {

namespace {

constexpr double kCostEps = 1e-12;

/// Per-table search state: candidate codecs, footprints and the current
/// choice per column.
struct TableState {
  std::string name;
  std::vector<std::vector<Encoding>> candidates;  // per column
  std::vector<std::vector<double>> bytes;         // parallel to candidates
  std::vector<size_t> choice;                     // candidate index per column
  std::vector<size_t> picker_choice;
  /// The codec the statistics carry: the store's current codec for
  /// column-resident tables, the picker's estimate otherwise — the
  /// incumbent assignment the hysteresis rule protects.
  std::vector<size_t> incumbent_choice;
  /// Whether some piece of the layout gives the column encoded mass
  /// (EncodedRowFraction > 0): vertical row-store columns usually carry
  /// none, but a column-store hot piece encodes every column it holds.
  std::vector<bool> searchable;

  std::vector<Encoding> Encodings() const {
    std::vector<Encoding> out(choice.size());
    for (size_t c = 0; c < choice.size(); ++c) {
      out[c] = candidates[c][choice[c]];
    }
    return out;
  }

  double FootprintBytes() const {
    double total = 0.0;
    for (size_t c = 0; c < choice.size(); ++c) {
      if (searchable[c]) total += bytes[c][choice[c]];
    }
    return total;
  }
};

/// One searchable (table, column) coordinate.
struct Item {
  size_t table;
  size_t column;
};

/// Per-column codec candidate machinery shared by Search and SearchJoint:
/// the picker-pruned codecs, their estimated footprints, and the indices
/// of the picker's choice and of the incumbent — the codec the statistics
/// carry (what the store currently uses, or the picker's choice for
/// hypothetical moves), falling back to the picker when it is no longer a
/// candidate (e.g. RLE pruned after the run structure degraded). Keeping
/// this in one place is what keeps the joint search's sequential baseline
/// in lock-step with Search().
struct ColumnCandidates {
  std::vector<Encoding> codecs;
  std::vector<double> bytes;
  size_t picker = 0;
  size_t incumbent = 0;
};

ColumnCandidates BuildColumnCandidates(
    const ColumnStatistics& stats, uint64_t row_count,
    const compression::EncodingPicker& picker) {
  ColumnCandidates out;
  compression::EncodingProfile profile =
      StatisticsEncodingProfile(stats, row_count);
  out.codecs = compression::CandidateEncodings(profile, picker.options());
  out.bytes.reserve(out.codecs.size());
  for (Encoding e : out.codecs) {
    double b = compression::EstimateEncodedBytes(e, profile);
    if (!std::isfinite(b)) b = std::numeric_limits<double>::max();
    out.bytes.push_back(b);
  }
  const Encoding picked = picker.Pick(profile);
  for (size_t i = 0; i < out.codecs.size(); ++i) {
    if (out.codecs[i] == picked) out.picker = i;
  }
  out.incumbent = out.picker;
  for (size_t i = 0; i < out.codecs.size(); ++i) {
    if (out.codecs[i] == stats.encoding) out.incumbent = i;
  }
  return out;
}

/// Incremental workload evaluator shared by Search and SearchJoint.
/// Queries touching no searched table are costed once at construction and
/// contribute a constant; an affected query is re-costed only when one of
/// its tables was marked dirty since the last Evaluate(). Every mutation
/// of a table's design must MarkDirty that table (or MarkAllDirty after a
/// bulk restore) before the next Evaluate(); skipped evaluations simply
/// let dirt accumulate.
class IncrementalEvaluator {
 public:
  IncrementalEvaluator(const WorkloadCostEstimator& estimator,
                       LayoutProvider provider,
                       const std::vector<WeightedQuery>& workload,
                       const std::map<std::string, size_t>& index_of)
      : estimator_(estimator), provider_(std::move(provider)) {
    for (const WeightedQuery& wq : workload) {
      QueryEval entry;
      entry.wq = &wq;
      for (const std::string& name : TablesOf(wq.query)) {
        auto it = index_of.find(name);
        if (it != index_of.end() &&
            std::find(entry.touched.begin(), entry.touched.end(),
                      it->second) == entry.touched.end()) {
          entry.touched.push_back(it->second);
        }
      }
      if (entry.touched.empty()) {
        running_total_ +=
            wq.weight * estimator_.QueryCost(wq.query, provider_);
      } else {
        affected_.push_back(std::move(entry));
      }
    }
  }

  void MarkDirty(size_t table) {
    if (!all_dirty_ &&
        std::find(dirty_.begin(), dirty_.end(), table) == dirty_.end()) {
      dirty_.push_back(table);
    }
  }

  void MarkAllDirty() {
    all_dirty_ = true;
    dirty_.clear();
  }

  double Evaluate() {
    ++evaluated_;
    for (QueryEval& entry : affected_) {
      bool stale = all_dirty_;
      for (size_t t : entry.touched) {
        if (stale) break;
        stale = std::find(dirty_.begin(), dirty_.end(), t) != dirty_.end();
      }
      if (!stale) continue;
      running_total_ -= entry.cost;
      entry.cost = entry.wq->weight *
                   estimator_.QueryCost(entry.wq->query, provider_);
      running_total_ += entry.cost;
    }
    all_dirty_ = false;
    dirty_.clear();
    return running_total_;
  }

  size_t evaluated() const { return evaluated_; }

 private:
  struct QueryEval {
    const WeightedQuery* wq = nullptr;
    std::vector<size_t> touched;  // searched-table indices
    double cost = 0.0;            // weighted, as of the last Evaluate()
  };

  const WorkloadCostEstimator& estimator_;
  LayoutProvider provider_;
  std::vector<QueryEval> affected_;
  double running_total_ = 0.0;  // fixed queries + affected after Evaluate()
  bool all_dirty_ = true;
  std::vector<size_t> dirty_;
  size_t evaluated_ = 0;
};

}  // namespace

EncodingSearchResult EncodingSearch::Search(
    const std::vector<WeightedQuery>& workload,
    const std::map<std::string, LayoutContext>& layouts) const {
  EncodingSearchResult result;

  // ---- Candidate sets: the picker's profile rules prune per column -------
  std::vector<TableState> tables;
  for (const auto& [name, ctx] : layouts) {
    if (!HasColumnStorePiece(ctx.layout)) continue;
    const TableStatistics* stats = catalog_->GetStatistics(name);
    const LogicalTable* table = catalog_->GetTable(name);
    if (stats == nullptr || stats->columns.empty() || table == nullptr) {
      continue;
    }
    const Schema& schema = table->schema();
    const compression::EncodingPicker picker(options_.picker);

    TableState state;
    state.name = name;
    const size_t n = stats->columns.size();
    state.candidates.resize(n);
    state.bytes.resize(n);
    state.choice.resize(n);
    state.picker_choice.resize(n);
    state.incumbent_choice.resize(n);
    state.searchable.assign(n, true);
    for (ColumnId c = 0; c < n; ++c) {
      ColumnCandidates cand =
          BuildColumnCandidates(stats->columns[c], stats->row_count, picker);
      state.candidates[c] = std::move(cand.codecs);
      state.bytes[c] = std::move(cand.bytes);
      state.picker_choice[c] = cand.picker;
      state.incumbent_choice[c] = cand.incumbent;
      state.choice[c] = cand.picker;
      // Footprint counts only the row mass the column-store pieces hold: a
      // horizontal split's row-store hot piece carries no encoded segments,
      // so a narrower hybrid split genuinely shrinks the budget charge. A
      // column is searched exactly when some piece gives it encoded mass —
      // vertical row-store columns usually carry none (the replicated
      // primary key stays encoded in the base piece), but a column-store
      // *hot* piece holds whole rows and encodes even those. Using the same
      // rule here and in SearchJoint keeps the two searches' footprints of
      // identical designs identical.
      const double fraction = EncodedRowFraction(ctx, schema, c);
      state.searchable[c] = fraction > 0.0;
      for (double& b : state.bytes[c]) b *= fraction;
    }
    tables.push_back(std::move(state));
  }
  if (tables.empty()) return result;

  std::vector<Item> items;
  size_t combinations = 1;
  bool overflow = false;
  for (size_t t = 0; t < tables.size(); ++t) {
    for (size_t c = 0; c < tables[t].choice.size(); ++c) {
      if (!tables[t].searchable[c] || tables[t].candidates[c].size() < 2) {
        continue;
      }
      items.push_back(Item{t, c});
      if (!overflow) {
        combinations *= tables[t].candidates[c].size();
        if (combinations > options_.exact_combination_limit) overflow = true;
      }
    }
  }

  // ---- Evaluation under the current per-table choices --------------------
  // Incremental: a candidate assignment differs from the previously
  // evaluated one in a few columns of a few tables, so only queries
  // touching those tables are re-costed.
  std::map<std::string, size_t> index_of;
  for (size_t t = 0; t < tables.size(); ++t) {
    index_of.emplace(tables[t].name, t);
  }
  auto layout_provider = [&](const std::string& name) {
    auto it = layouts.find(name);
    LayoutContext ctx = it == layouts.end()
                            ? LayoutContext::SingleStore(StoreType::kRow)
                            : it->second;
    auto ti = index_of.find(name);
    if (ti != index_of.end()) {
      ctx.encodings = tables[ti->second].Encodings();
    }
    return ctx;
  };
  IncrementalEvaluator eval(estimator_, layout_provider, workload, index_of);
  auto mark_dirty = [&](size_t t) { eval.MarkDirty(t); };
  auto mark_all_dirty = [&]() { eval.MarkAllDirty(); };
  auto evaluate = [&]() { return eval.Evaluate(); };
  auto total_footprint = [&]() {
    double total = 0.0;
    for (const TableState& state : tables) total += state.FootprintBytes();
    return total;
  };

  // Feasibility floor: every searchable column at its smallest codec.
  double min_footprint = 0.0;
  for (const TableState& state : tables) {
    for (size_t c = 0; c < state.choice.size(); ++c) {
      if (!state.searchable[c]) continue;
      min_footprint +=
          *std::min_element(state.bytes[c].begin(), state.bytes[c].end());
    }
  }
  result.min_footprint_bytes = min_footprint;

  // ---- Picker and incumbent baselines ------------------------------------
  for (TableState& state : tables) state.choice = state.picker_choice;
  mark_all_dirty();
  result.picker_cost_ms = evaluate();
  result.picker_footprint_bytes = total_footprint();

  bool incumbent_is_picker = true;
  for (const TableState& state : tables) {
    incumbent_is_picker =
        incumbent_is_picker && state.incumbent_choice == state.picker_choice;
  }
  double incumbent_cost = result.picker_cost_ms;
  double incumbent_footprint = result.picker_footprint_bytes;
  if (!incumbent_is_picker) {
    for (TableState& state : tables) state.choice = state.incumbent_choice;
    mark_all_dirty();
    incumbent_cost = evaluate();
    incumbent_footprint = total_footprint();
  }

  const std::optional<double>& budget = options_.memory_budget_bytes;
  auto feasible_at = [&](double footprint) {
    return !budget.has_value() || footprint <= *budget + 1e-6;
  };

  // The incumbent preloads the winner: the search must earn any deviation.
  double best_cost = incumbent_cost;
  double best_footprint = incumbent_footprint;
  std::vector<std::vector<size_t>> best_choice;
  auto snapshot = [&]() {
    best_choice.clear();
    for (const TableState& state : tables) best_choice.push_back(state.choice);
  };
  for (TableState& state : tables) state.choice = state.incumbent_choice;
  snapshot();

  if (!overflow && !items.empty()) {
    // ---- Exact enumeration over the candidate cross-product --------------
    result.exact = true;
    bool any_feasible = feasible_at(incumbent_footprint);
    // Enumerate with non-item columns pinned at the picker choice (their
    // candidate set is a singleton anyway).
    std::vector<size_t> odometer(items.size(), 0);
    for (const Item& item : items) {
      tables[item.table].choice[item.column] = 0;
    }
    mark_all_dirty();
    bool done = false;
    while (!done) {
      double footprint = total_footprint();
      if (feasible_at(footprint)) {
        double cost = evaluate();
        bool better =
            !any_feasible || cost < best_cost - kCostEps ||
            (cost <= best_cost + kCostEps && footprint < best_footprint);
        if (better) {
          best_cost = cost;
          best_footprint = footprint;
          snapshot();
        }
        any_feasible = true;
      }
      // Advance the odometer.
      size_t i = 0;
      for (; i < items.size(); ++i) {
        size_t limit =
            tables[items[i].table].candidates[items[i].column].size();
        size_t next = odometer[i] + 1;
        odometer[i] = next < limit ? next : 0;
        tables[items[i].table].choice[items[i].column] = odometer[i];
        mark_dirty(items[i].table);
        if (next < limit) break;
      }
      done = i == items.size();
    }
    if (!any_feasible) {
      // Budget below the floor: fall back to the minimal footprint.
      for (TableState& state : tables) {
        for (size_t c = 0; c < state.choice.size(); ++c) {
          if (!state.searchable[c]) continue;
          state.choice[c] = static_cast<size_t>(
              std::min_element(state.bytes[c].begin(), state.bytes[c].end()) -
              state.bytes[c].begin());
        }
      }
      mark_all_dirty();
      best_cost = evaluate();
      best_footprint = total_footprint();
      snapshot();
      result.feasible = false;
    }
  } else {
    // ---- Greedy knapsack --------------------------------------------------
    // Phase 1: coordinate descent on workload cost, budget ignored. Starting
    // from the picker's assignment this can only improve the cost.
    for (TableState& state : tables) state.choice = state.picker_choice;
    mark_all_dirty();
    double cur_cost = result.picker_cost_ms;
    bool improved = true;
    int passes = 0;
    while (improved && passes++ < 8) {
      improved = false;
      for (const Item& item : items) {
        TableState& state = tables[item.table];
        size_t original = state.choice[item.column];
        size_t best_i = original;
        double best_i_cost = cur_cost;
        double best_i_bytes = state.bytes[item.column][original];
        for (size_t i = 0; i < state.candidates[item.column].size(); ++i) {
          if (i == original) continue;
          state.choice[item.column] = i;
          mark_dirty(item.table);
          double cost = evaluate();
          double b = state.bytes[item.column][i];
          if (cost < best_i_cost - kCostEps ||
              (cost <= best_i_cost + kCostEps && b < best_i_bytes)) {
            best_i = i;
            best_i_cost = cost;
            best_i_bytes = b;
          }
        }
        state.choice[item.column] = best_i;
        mark_dirty(item.table);
        if (best_i != original) {
          cur_cost = best_i_cost;
          improved = true;
        }
      }
    }

    // Phase 2: repair the budget — repeatedly take the swap to a smaller
    // codec with the best cost-increase / bytes-saved ratio (the classic
    // greedy knapsack eviction over per-column footprint deltas).
    double cur_footprint = total_footprint();
    while (budget.has_value() && cur_footprint > *budget + 1e-6) {
      double best_ratio = std::numeric_limits<double>::infinity();
      double best_saved = 0.0;
      size_t best_item = items.size();
      size_t best_cand = 0;
      double best_swap_cost = cur_cost;
      for (size_t n = 0; n < items.size(); ++n) {
        TableState& state = tables[items[n].table];
        size_t cur = state.choice[items[n].column];
        double cur_bytes = state.bytes[items[n].column][cur];
        for (size_t i = 0; i < state.candidates[items[n].column].size();
             ++i) {
          double saved = cur_bytes - state.bytes[items[n].column][i];
          if (saved <= 0.0) continue;
          state.choice[items[n].column] = i;
          mark_dirty(items[n].table);
          double cost = evaluate();
          state.choice[items[n].column] = cur;
          mark_dirty(items[n].table);
          double ratio = (cost - cur_cost) / saved;
          if (ratio < best_ratio ||
              (ratio <= best_ratio + kCostEps && saved > best_saved)) {
            best_ratio = ratio;
            best_saved = saved;
            best_item = n;
            best_cand = i;
            best_swap_cost = cost;
          }
        }
      }
      if (best_item == items.size()) break;  // nothing left to shrink
      tables[items[best_item].table].choice[items[best_item].column] =
          best_cand;
      mark_dirty(items[best_item].table);
      cur_cost = best_swap_cost;
      cur_footprint -= best_saved;
      ++result.repair_iterations;
    }

    best_cost = cur_cost;
    best_footprint = total_footprint();
    result.feasible = feasible_at(best_footprint);
    snapshot();

    // Never-worse guarantee: when the picker's own assignment is feasible
    // and cheaper, keep it.
    if (feasible_at(result.picker_footprint_bytes) &&
        result.picker_cost_ms < best_cost - kCostEps) {
      for (size_t t = 0; t < tables.size(); ++t) {
        tables[t].choice = tables[t].picker_choice;
      }
      best_cost = result.picker_cost_ms;
      best_footprint = result.picker_footprint_bytes;
      result.feasible = true;
      snapshot();
    }
  }

  // ---- Hysteresis: recommendation stability ------------------------------
  // Keep the incumbent encodings unless the winner improves materially.
  // Guarded so the never-worse-than-picker and budget guarantees survive:
  // the incumbent must itself be feasible and no costlier than the picker.
  if (feasible_at(incumbent_footprint) &&
      incumbent_cost <= result.picker_cost_ms + kCostEps &&
      best_cost > incumbent_cost -
                      options_.min_improvement * incumbent_cost) {
    for (TableState& state : tables) state.choice = state.incumbent_choice;
    best_cost = incumbent_cost;
    best_footprint = incumbent_footprint;
    result.feasible = true;
    result.hysteresis_applied = true;
    snapshot();
  }

  // ---- Materialize the winner -------------------------------------------
  for (size_t t = 0; t < tables.size(); ++t) {
    tables[t].choice = best_choice[t];
    TableEncodingAssignment assignment;
    assignment.encodings = tables[t].Encodings();
    assignment.footprint_bytes = tables[t].FootprintBytes();
    result.tables.emplace(tables[t].name, std::move(assignment));
  }
  result.cost_ms = best_cost;
  result.footprint_bytes = best_footprint;
  result.evaluated_assignments = eval.evaluated();
  return result;
}

namespace {

/// Per-table state of the joint search: layout candidates crossed with
/// per-column codec candidates. Codec candidate sets and byte estimates are
/// layout-independent; which columns carry encoded mass (and how much of
/// it) depends on the layout via the per-layout fraction table.
struct JointTable {
  std::string name;
  std::vector<LayoutCandidate> layouts;           // [0] = staged pick
  std::vector<std::vector<Encoding>> candidates;  // per column
  std::vector<std::vector<double>> bytes;         // parallel, unscaled
  std::vector<std::vector<double>> fraction;      // [layout][column]

  size_t layout_choice = 0;
  std::vector<size_t> choice;
  std::vector<size_t> picker_choice;
  /// The codecs the catalog statistics carry (the store's current codecs),
  /// and the candidate matching the table's current layout — together the
  /// incumbent design the hysteresis rule protects across layout flips.
  std::vector<size_t> incumbent_choice;
  size_t incumbent_layout = 0;
  bool has_incumbent_layout = false;

  std::vector<Encoding> Encodings() const {
    std::vector<Encoding> out(choice.size());
    for (size_t c = 0; c < choice.size(); ++c) {
      out[c] = candidates[c][choice[c]];
    }
    return out;
  }

  double FootprintBytes() const {
    double total = 0.0;
    for (size_t c = 0; c < choice.size(); ++c) {
      total += bytes[c][choice[c]] * fraction[layout_choice][c];
    }
    return total;
  }

  /// Footprint of the current codecs under a hypothetical layout flip.
  double FootprintBytesAt(size_t layout) const {
    double total = 0.0;
    for (size_t c = 0; c < choice.size(); ++c) {
      total += bytes[c][choice[c]] * fraction[layout][c];
    }
    return total;
  }

  /// Tightest footprint this layout can reach (per-column byte minima).
  double MinFootprintAt(size_t layout) const {
    double total = 0.0;
    for (size_t c = 0; c < choice.size(); ++c) {
      total += *std::min_element(bytes[c].begin(), bytes[c].end()) *
               fraction[layout][c];
    }
    return total;
  }

  LayoutContext Context() const {
    LayoutContext ctx = layouts[layout_choice].context;
    ctx.encodings = Encodings();
    return ctx;
  }
};

}  // namespace

JointSearchResult EncodingSearch::SearchJoint(
    const std::vector<WeightedQuery>& workload,
    const std::map<std::string, std::vector<LayoutCandidate>>& candidates)
    const {
  JointSearchResult result;

  // The staged pipeline's layouts (candidate 0): the sequential baseline's
  // input and the layout provider's fallback for unsearched tables.
  std::map<std::string, LayoutContext> base_layouts;
  for (const auto& [name, cands] : candidates) {
    if (!cands.empty()) base_layouts.emplace(name, cands[0].context);
  }

  // ---- Per-table search state -------------------------------------------
  std::vector<JointTable> tables;
  for (const auto& [name, cands] : candidates) {
    if (cands.empty()) continue;
    const TableStatistics* stats = catalog_->GetStatistics(name);
    const LogicalTable* table = catalog_->GetTable(name);
    if (stats == nullptr || stats->columns.empty() || table == nullptr) {
      continue;
    }
    const Schema& schema = table->schema();
    const compression::EncodingPicker picker(options_.picker);

    JointTable state;
    state.name = name;
    state.layouts = cands;
    const size_t n = stats->columns.size();
    state.candidates.resize(n);
    state.bytes.resize(n);
    state.choice.resize(n);
    state.picker_choice.resize(n);
    state.incumbent_choice.resize(n);
    for (ColumnId c = 0; c < n; ++c) {
      ColumnCandidates cand =
          BuildColumnCandidates(stats->columns[c], stats->row_count, picker);
      state.candidates[c] = std::move(cand.codecs);
      state.bytes[c] = std::move(cand.bytes);
      state.picker_choice[c] = cand.picker;
      state.incumbent_choice[c] = cand.incumbent;
      state.choice[c] = cand.picker;
    }
    state.fraction.resize(cands.size());
    for (size_t l = 0; l < cands.size(); ++l) {
      state.fraction[l].resize(n);
      for (ColumnId c = 0; c < n; ++c) {
        state.fraction[l][c] =
            EncodedRowFraction(cands[l].context, schema, c);
      }
    }
    // The incumbent layout is the candidate matching what the catalog
    // currently has; absent one, the table has no layout incumbent and the
    // hysteresis rule falls back to the sequential pick for it.
    for (size_t l = 0; l < cands.size(); ++l) {
      if (cands[l].context.layout == table->layout()) {
        state.incumbent_layout = l;
        state.has_incumbent_layout = true;
        break;
      }
    }
    tables.push_back(std::move(state));
  }
  if (tables.empty()) return result;

  // ---- Search dimensions and the exact-enumeration budget ----------------
  struct Dim {
    size_t table;
    bool is_layout;
    size_t column;
  };
  std::vector<Dim> dims;
  size_t combinations = 1;
  bool overflow = false;
  auto bump = [&](size_t k) {
    if (!overflow) {
      combinations *= k;
      if (combinations > options_.exact_combination_limit) overflow = true;
    }
  };
  for (size_t t = 0; t < tables.size(); ++t) {
    if (tables[t].layouts.size() > 1) {
      dims.push_back(Dim{t, true, 0});
      bump(tables[t].layouts.size());
    }
    for (size_t c = 0; c < tables[t].choice.size(); ++c) {
      if (tables[t].candidates[c].size() < 2) continue;
      // A codec only matters where some candidate layout gives the column
      // encoded mass.
      bool encoded_somewhere = false;
      for (size_t l = 0; l < tables[t].layouts.size(); ++l) {
        encoded_somewhere =
            encoded_somewhere || tables[t].fraction[l][c] > 0.0;
      }
      if (!encoded_somewhere) continue;
      dims.push_back(Dim{t, false, c});
      bump(tables[t].candidates[c].size());
    }
  }

  // ---- Incremental evaluation (identical scheme to Search) ---------------
  std::map<std::string, size_t> index_of;
  for (size_t t = 0; t < tables.size(); ++t) {
    index_of.emplace(tables[t].name, t);
  }
  auto layout_provider = [&](const std::string& name) {
    auto ti = index_of.find(name);
    if (ti != index_of.end()) return tables[ti->second].Context();
    auto it = base_layouts.find(name);
    return it == base_layouts.end()
               ? LayoutContext::SingleStore(StoreType::kRow)
               : it->second;
  };

  IncrementalEvaluator eval(estimator_, layout_provider, workload, index_of);
  auto mark_dirty = [&](size_t t) { eval.MarkDirty(t); };
  auto mark_all_dirty = [&]() { eval.MarkAllDirty(); };
  auto evaluate = [&]() { return eval.Evaluate(); };
  auto total_footprint = [&]() {
    double total = 0.0;
    for (const JointTable& state : tables) total += state.FootprintBytes();
    return total;
  };

  // Feasibility floor: every table at its tightest layout+codec design.
  double min_footprint = 0.0;
  for (const JointTable& state : tables) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t l = 0; l < state.layouts.size(); ++l) {
      best = std::min(best, state.MinFootprintAt(l));
    }
    min_footprint += best;
  }
  result.min_footprint_bytes = min_footprint;

  const std::optional<double>& budget = options_.memory_budget_bytes;
  auto feasible_at = [&](double footprint) {
    return !budget.has_value() || footprint <= *budget + 1e-6;
  };

  // ---- Sequential baseline: the staged layout-then-encoding pipeline ----
  // Run the per-column search on the frozen candidate-0 layouts (exactly
  // what the advisor did before the joint mode) and price the result with
  // this search's own evaluator, so comparisons are apples to apples.
  EncodingSearchResult sequential = Search(workload, base_layouts);
  result.picker_cost_ms = sequential.picker_cost_ms;
  for (JointTable& state : tables) {
    state.layout_choice = 0;
    auto it = sequential.tables.find(state.name);
    if (it == sequential.tables.end()) {
      state.choice = state.picker_choice;
      continue;
    }
    for (size_t c = 0; c < state.choice.size(); ++c) {
      state.choice[c] = state.picker_choice[c];
      if (c < it->second.encodings.size()) {
        for (size_t i = 0; i < state.candidates[c].size(); ++i) {
          if (state.candidates[c][i] == it->second.encodings[c]) {
            state.choice[c] = i;
          }
        }
      }
    }
  }
  mark_all_dirty();
  const double sequential_cost = evaluate();
  const double sequential_footprint = total_footprint();
  result.sequential_cost_ms = sequential_cost;
  result.sequential_footprint_bytes = sequential_footprint;
  result.sequential_feasible = feasible_at(sequential_footprint);
  std::vector<size_t> seq_layout(tables.size(), 0);
  std::vector<std::vector<size_t>> seq_choice;
  for (const JointTable& state : tables) seq_choice.push_back(state.choice);

  // ---- Incumbent design: what the catalog currently has ------------------
  // Tables whose current layout is not among the candidates fall back to
  // their sequential pick (they have no layout incumbent to protect).
  bool incumbent_is_sequential = true;
  for (size_t t = 0; t < tables.size(); ++t) {
    JointTable& state = tables[t];
    if (state.has_incumbent_layout) {
      state.layout_choice = state.incumbent_layout;
      state.choice = state.incumbent_choice;
    } else {
      state.layout_choice = 0;
      state.choice = seq_choice[t];
    }
    incumbent_is_sequential = incumbent_is_sequential &&
                              state.layout_choice == 0 &&
                              state.choice == seq_choice[t];
  }
  double incumbent_cost = sequential_cost;
  double incumbent_footprint = sequential_footprint;
  if (!incumbent_is_sequential) {
    mark_all_dirty();
    incumbent_cost = evaluate();
    incumbent_footprint = total_footprint();
  }
  std::vector<size_t> inc_layout(tables.size());
  std::vector<std::vector<size_t>> inc_choice;
  for (size_t t = 0; t < tables.size(); ++t) {
    inc_layout[t] = tables[t].layout_choice;
    inc_choice.push_back(tables[t].choice);
  }

  // ---- Winner tracking ---------------------------------------------------
  bool have_best = false;
  double best_cost = 0.0;
  double best_footprint = 0.0;
  std::vector<size_t> best_layout(tables.size(), 0);
  std::vector<std::vector<size_t>> best_choice;
  auto snapshot = [&]() {
    best_choice.clear();
    for (size_t t = 0; t < tables.size(); ++t) {
      best_layout[t] = tables[t].layout_choice;
      best_choice.push_back(tables[t].choice);
    }
  };
  auto consider = [&](double cost, double footprint) {
    if (!feasible_at(footprint)) return;
    if (!have_best || cost < best_cost - kCostEps ||
        (cost <= best_cost + kCostEps && footprint < best_footprint)) {
      have_best = true;
      best_cost = cost;
      best_footprint = footprint;
      snapshot();
    }
  };
  auto restore = [&](const std::vector<size_t>& layout,
                     const std::vector<std::vector<size_t>>& choice) {
    for (size_t t = 0; t < tables.size(); ++t) {
      tables[t].layout_choice = layout[t];
      tables[t].choice = choice[t];
    }
    mark_all_dirty();
  };

  // The sequential design preloads the winner: any deviation must earn it.
  restore(seq_layout, seq_choice);
  consider(sequential_cost, sequential_footprint);

  if (!overflow && !dims.empty()) {
    // ---- Exact enumeration over the layout x codec cross-product ---------
    result.exact = true;
    for (const Dim& dim : dims) {
      if (dim.is_layout) {
        tables[dim.table].layout_choice = 0;
      } else {
        tables[dim.table].choice[dim.column] = 0;
      }
    }
    std::vector<size_t> odometer(dims.size(), 0);
    mark_all_dirty();
    bool done = false;
    while (!done) {
      double footprint = total_footprint();
      if (feasible_at(footprint)) consider(evaluate(), footprint);
      size_t i = 0;
      for (; i < dims.size(); ++i) {
        const Dim& dim = dims[i];
        const size_t limit =
            dim.is_layout ? tables[dim.table].layouts.size()
                          : tables[dim.table].candidates[dim.column].size();
        const size_t next = odometer[i] + 1;
        odometer[i] = next < limit ? next : 0;
        if (dim.is_layout) {
          tables[dim.table].layout_choice = odometer[i];
        } else {
          tables[dim.table].choice[dim.column] = odometer[i];
        }
        mark_dirty(dim.table);
        if (next < limit) break;
      }
      done = i == dims.size();
    }
  } else {
    // ---- Greedy joint descent ---------------------------------------------
    // Phase 1: per-table coordinate descent on workload cost over (layout,
    // codecs), budget ignored — starting from the sequential solution this
    // can only improve the cost.
    restore(seq_layout, seq_choice);
    double cur_cost = evaluate();
    bool improved = true;
    int passes = 0;
    while (improved && passes++ < 4) {
      improved = false;
      for (size_t t = 0; t < tables.size(); ++t) {
        JointTable& state = tables[t];
        size_t best_l = state.layout_choice;
        std::vector<size_t> best_ch = state.choice;
        double best_t_cost = cur_cost;
        double best_t_bytes = state.FootprintBytes();
        for (size_t l = 0; l < state.layouts.size(); ++l) {
          state.layout_choice = l;
          mark_dirty(t);
          double l_cost = evaluate();
          // Codec descent for the columns that carry encoded mass under l.
          bool l_improved = true;
          int l_passes = 0;
          while (l_improved && l_passes++ < 4) {
            l_improved = false;
            for (size_t c = 0; c < state.choice.size(); ++c) {
              if (state.candidates[c].size() < 2 ||
                  state.fraction[l][c] <= 0.0) {
                continue;
              }
              size_t original = state.choice[c];
              size_t best_i = original;
              double best_i_cost = l_cost;
              double best_i_bytes = state.bytes[c][original];
              for (size_t i = 0; i < state.candidates[c].size(); ++i) {
                if (i == original) continue;
                state.choice[c] = i;
                mark_dirty(t);
                double cost = evaluate();
                if (cost < best_i_cost - kCostEps ||
                    (cost <= best_i_cost + kCostEps &&
                     state.bytes[c][i] < best_i_bytes)) {
                  best_i = i;
                  best_i_cost = cost;
                  best_i_bytes = state.bytes[c][i];
                }
              }
              state.choice[c] = best_i;
              mark_dirty(t);
              if (best_i != original) {
                l_cost = best_i_cost;
                l_improved = true;
              } else {
                l_cost = evaluate();
              }
            }
          }
          double l_bytes = state.FootprintBytes();
          if (l_cost < best_t_cost - kCostEps ||
              (l_cost <= best_t_cost + kCostEps && l_bytes < best_t_bytes)) {
            if (l != best_l || state.choice != best_ch) improved = true;
            best_l = l;
            best_ch = state.choice;
            best_t_cost = l_cost;
            best_t_bytes = l_bytes;
          }
        }
        state.layout_choice = best_l;
        state.choice = best_ch;
        mark_dirty(t);
        cur_cost = evaluate();
      }
    }

    // Phase 2: repair the budget. The eviction moves now include layout
    // flips — a table whose encoded footprint busts the budget can fall
    // back to the row store or a narrower hybrid split — alongside the
    // classic swap-to-a-smaller-codec moves, all ranked by cost-increase
    // per byte saved.
    double cur_footprint = total_footprint();
    while (budget.has_value() && cur_footprint > *budget + 1e-6) {
      double best_ratio = std::numeric_limits<double>::infinity();
      double best_saved = 0.0;
      double best_move_cost = cur_cost;
      size_t move_table = tables.size();
      bool move_is_layout = false;
      size_t move_column = 0;
      size_t move_target = 0;
      auto offer = [&](size_t t, bool is_layout, size_t column,
                       size_t target, double saved, double cost) {
        const double ratio = (cost - cur_cost) / saved;
        if (ratio < best_ratio ||
            (ratio <= best_ratio + kCostEps && saved > best_saved)) {
          best_ratio = ratio;
          best_saved = saved;
          best_move_cost = cost;
          move_table = t;
          move_is_layout = is_layout;
          move_column = column;
          move_target = target;
        }
      };
      for (size_t t = 0; t < tables.size(); ++t) {
        JointTable& state = tables[t];
        const size_t cur_layout = state.layout_choice;
        for (size_t c = 0; c < state.choice.size(); ++c) {
          if (state.fraction[cur_layout][c] <= 0.0) continue;
          const size_t cur = state.choice[c];
          for (size_t i = 0; i < state.candidates[c].size(); ++i) {
            const double saved = (state.bytes[c][cur] - state.bytes[c][i]) *
                                 state.fraction[cur_layout][c];
            if (saved <= 0.0) continue;
            state.choice[c] = i;
            mark_dirty(t);
            double cost = evaluate();
            state.choice[c] = cur;
            mark_dirty(t);
            offer(t, false, c, i, saved, cost);
          }
        }
        const double cur_bytes = state.FootprintBytes();
        for (size_t l = 0; l < state.layouts.size(); ++l) {
          if (l == cur_layout) continue;
          const double saved = cur_bytes - state.FootprintBytesAt(l);
          if (saved <= 0.0) continue;
          state.layout_choice = l;
          mark_dirty(t);
          double cost = evaluate();
          state.layout_choice = cur_layout;
          mark_dirty(t);
          offer(t, true, 0, l, saved, cost);
        }
      }
      if (move_table == tables.size()) break;  // nothing left to shrink
      if (move_is_layout) {
        tables[move_table].layout_choice = move_target;
      } else {
        tables[move_table].choice[move_column] = move_target;
      }
      mark_dirty(move_table);
      cur_cost = best_move_cost;
      cur_footprint -= best_saved;
      ++result.repair_iterations;
    }
    // Re-evaluate cleanly (the eviction loop tracks the footprint
    // incrementally) and offer the repaired design to the winner.
    mark_all_dirty();
    consider(evaluate(), total_footprint());
  }

  // ---- Infeasible even at the best layout: report the floor --------------
  if (!have_best) {
    for (JointTable& state : tables) {
      size_t floor_layout = 0;
      double floor_bytes = std::numeric_limits<double>::infinity();
      for (size_t l = 0; l < state.layouts.size(); ++l) {
        const double b = state.MinFootprintAt(l);
        if (b < floor_bytes) {
          floor_bytes = b;
          floor_layout = l;
        }
      }
      state.layout_choice = floor_layout;
      for (size_t c = 0; c < state.choice.size(); ++c) {
        state.choice[c] = static_cast<size_t>(
            std::min_element(state.bytes[c].begin(), state.bytes[c].end()) -
            state.bytes[c].begin());
      }
    }
    mark_all_dirty();
    best_cost = evaluate();
    best_footprint = total_footprint();
    snapshot();
    have_best = true;
    // The greedy repair can get stuck above the budget even when the floor
    // design fits (it never combines a layout flip with codec downgrades
    // in one move), so feasibility is judged by the materialized design,
    // not by how we got here: infeasible only when even the best
    // layout+codec floor cannot fit.
    result.feasible = feasible_at(best_footprint);
  }

  // ---- Hysteresis: recommendation stability across layout flips ----------
  // Keep the catalog's current design unless the winner improves
  // materially, guarded so the never-worse-than-sequential and budget
  // guarantees survive: the incumbent must itself be feasible and no
  // costlier than the sequential pipeline's solution.
  if (options_.min_improvement > 0.0 && feasible_at(incumbent_footprint) &&
      incumbent_cost <= sequential_cost + kCostEps &&
      best_cost > incumbent_cost -
                      options_.min_improvement * incumbent_cost) {
    restore(inc_layout, inc_choice);
    best_cost = incumbent_cost;
    best_footprint = incumbent_footprint;
    result.feasible = true;
    result.hysteresis_applied = true;
    snapshot();
  }

  // ---- Materialize the winner -------------------------------------------
  restore(best_layout, best_choice);
  for (JointTable& state : tables) {
    JointTableDesign design;
    design.candidate_index = state.layout_choice;
    design.context = state.Context();
    design.reason = state.layouts[state.layout_choice].reason;
    design.footprint_bytes = state.FootprintBytes();
    design.layout_changed = !(state.layouts[state.layout_choice]
                                  .context.layout ==
                              state.layouts[0].context.layout);
    result.tables.emplace(state.name, std::move(design));
  }
  result.cost_ms = best_cost;
  result.footprint_bytes = best_footprint;
  result.evaluated_assignments = eval.evaluated();
  return result;
}

}  // namespace hsdb
