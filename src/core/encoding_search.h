// EncodingSearch: per-column codec selection as a first-class advisor
// search dimension. Where PR 1 delegated the encoding choice to the
// heuristic EncodingPicker (smallest estimated footprint per column), the
// search enumerates the feasible codecs of every column-store column —
// pruned by the picker's profile rules — and minimizes the *workload* cost
// under a user-supplied memory budget: fast codecs (RLE run skipping,
// frame-of-reference) trade scan speed against footprint, and the
// delta-merge re-encoding term prices codec choice into the insert cost.
//
// The optimization is a knapsack over per-column footprint deltas: greedy
// coordinate descent plus a best-ratio eviction loop in the general case,
// exact enumeration when the candidate cross-product is small. The picker's
// assignment is always evaluated as a baseline, so an unconstrained search
// never returns a costlier assignment than the picker's.
//
// SearchJoint widens the search space to the *layout* dimension: instead of
// optimizing codecs over layouts a prior stage froze, it explores per-table
// layout candidates (row/column/hybrid splits, supplied by the caller from
// the PartitionAdvisor's heuristics) crossed with the per-column codec
// assignments, all under one shared memory budget. A binding budget can
// then flip a table to the row store or a narrower hybrid split — footprint
// relief the staged pipeline cannot express — and the sequential
// layout-then-encoding solution is always evaluated as a baseline, so the
// joint result is never costlier whenever that solution is feasible.
#ifndef HSDB_CORE_ENCODING_SEARCH_H_
#define HSDB_CORE_ENCODING_SEARCH_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/workload_cost.h"
#include "storage/compression/encoding_picker.h"

namespace hsdb {

struct EncodingSearchOptions {
  /// Total memory budget (bytes) for the encoded main segments of all
  /// column-store-resident columns across the design. Unset = unconstrained
  /// (the search still runs and minimizes workload cost).
  std::optional<double> memory_budget_bytes;
  /// Exact enumeration when the candidate cross-product has at most this
  /// many combinations; greedy knapsack beyond. 0 forces greedy.
  size_t exact_combination_limit = 4096;
  /// Recommendation-stability hysteresis: keep the incumbent encodings (the
  /// codecs the statistics carry — what the store currently uses, or the
  /// picker's choice for hypothetical moves) unless the best found
  /// assignment improves the workload cost by at least this fraction while
  /// the incumbent is budget-feasible and no worse than the picker
  /// baseline. Prevents DDL churn between cost-near-equal codecs on
  /// columns the workload barely touches. 0 disables.
  double min_improvement = 0.02;
  /// Pruning rules for the per-column candidate sets; must mirror the
  /// store's picker options so the search only proposes codecs the store
  /// would accept.
  compression::EncodingPicker::Options picker;
};

/// Chosen codecs of one table, in logical column order (every column gets
/// an entry; columns of row-store pieces keep the picker's choice and do
/// not count toward the footprint).
struct TableEncodingAssignment {
  std::vector<Encoding> encodings;
  /// Estimated encoded footprint (bytes) of the column-store columns,
  /// scaled by the row mass the column-store pieces actually hold (a
  /// horizontal split's row-store hot piece carries no encoded segments).
  double footprint_bytes = 0.0;
};

struct EncodingSearchResult {
  /// Assignment per table with a column-store piece. Tables without
  /// statistics (or without column-store pieces) are absent.
  std::map<std::string, TableEncodingAssignment> tables;

  /// Estimated workload cost (ms) under the chosen assignment / under the
  /// picker's heuristic assignment.
  double cost_ms = 0.0;
  double picker_cost_ms = 0.0;

  /// Total estimated footprint of the chosen / picker assignment, plus the
  /// tightest footprint any assignment could reach (per-column minima) —
  /// the feasibility floor a budget is checked against.
  double footprint_bytes = 0.0;
  double picker_footprint_bytes = 0.0;
  double min_footprint_bytes = 0.0;

  /// False when the budget lies below min_footprint_bytes; the result then
  /// carries the minimal-footprint assignment.
  bool feasible = true;
  /// True when the candidate cross-product was enumerated exhaustively.
  bool exact = false;
  /// Workload evaluations the search performed (search-effort metric).
  size_t evaluated_assignments = 0;
  /// Budget-repair evictions the greedy search performed to squeeze the
  /// assignment under the budget (0 when the budget held immediately).
  size_t repair_iterations = 0;
  /// True when the hysteresis rule kept the incumbent assignment against a
  /// marginally better challenger.
  bool hysteresis_applied = false;
};

/// One table's chosen design in the joint layout+encoding search.
struct JointTableDesign {
  /// Index into the caller's candidate list for this table.
  size_t candidate_index = 0;
  /// Chosen layout (+locality context) with the chosen per-column codecs
  /// installed in LayoutContext::encodings.
  LayoutContext context;
  /// The chosen candidate's label, for the rationale.
  std::string reason;
  /// Estimated encoded footprint (bytes) of this table's column-store
  /// pieces under the chosen design — the table's budget attribution.
  double footprint_bytes = 0.0;
  /// True when the chosen layout differs from the sequential (staged)
  /// pipeline's pick, i.e. the flip only the joint search can express.
  bool layout_changed = false;
};

struct JointSearchResult {
  /// Chosen design per table with catalog statistics. Tables without
  /// statistics keep their candidate-0 layout and are absent here.
  std::map<std::string, JointTableDesign> tables;

  /// Estimated workload cost (ms) and encoded footprint (bytes) of the
  /// chosen joint design.
  double cost_ms = 0.0;
  double footprint_bytes = 0.0;
  /// False when no layout+codec combination meets the budget; the result
  /// then carries the minimal-footprint design across all candidates.
  bool feasible = true;

  /// The sequential pipeline's solution — layouts frozen at candidate 0,
  /// the encoding search run on them under the same budget. The joint
  /// result never costs more whenever this solution is itself feasible.
  double sequential_cost_ms = 0.0;
  double sequential_footprint_bytes = 0.0;
  bool sequential_feasible = true;

  /// The picker's heuristic assignment on the sequential layouts (the
  /// pre-search baseline, echoed for reporting).
  double picker_cost_ms = 0.0;

  /// Tightest footprint any layout+codec combination could reach — the
  /// feasibility floor a budget is checked against. Zero whenever every
  /// table has a pure row-store candidate.
  double min_footprint_bytes = 0.0;

  /// True when the layout x codec cross-product was enumerated exhaustively.
  bool exact = false;
  /// Workload evaluations the search performed (search-effort metric).
  size_t evaluated_assignments = 0;
  /// Budget-repair evictions the greedy search performed to squeeze the
  /// design under the budget (0 when the budget held immediately).
  size_t repair_iterations = 0;
  /// True when the hysteresis rule kept the incumbent design against a
  /// marginally better challenger.
  bool hysteresis_applied = false;
};

/// Runs the encoding (Search) and joint layout+encoding (SearchJoint)
/// optimizations against a cost model and catalog; stateless between calls.
class EncodingSearch {
 public:
  /// Searches with default options (unconstrained budget, 2% hysteresis).
  EncodingSearch(const CostModel* model, const Catalog* catalog)
      : EncodingSearch(model, catalog, EncodingSearchOptions{}) {}
  EncodingSearch(const CostModel* model, const Catalog* catalog,
                 EncodingSearchOptions options)
      : estimator_(model, catalog),
        catalog_(catalog),
        options_(std::move(options)) {}

  /// Searches the per-column encoding assignment for every table in
  /// `layouts` that has a column-store piece and catalog statistics. The
  /// returned encodings are meant to be installed into
  /// LayoutContext::encodings (the estimator then costs scans/inserts with
  /// them) and into the advisor's ENCODING (...) DDL clauses.
  EncodingSearchResult Search(
      const std::vector<WeightedQuery>& workload,
      const std::map<std::string, LayoutContext>& layouts) const;

  /// Joint layout+encoding search. `candidates` supplies per table the
  /// layout alternatives to explore; entry 0 must be the staged pipeline's
  /// pick (it anchors the sequential baseline and the layout_changed
  /// reporting). The search minimizes workload cost over the cross-product
  /// of layout candidates and per-column codec assignments under the
  /// options' shared memory budget, reusing the incremental dirty-table
  /// evaluation so flipping one table re-costs only the queries touching
  /// it. Guarantees: never costlier than the sequential pipeline when the
  /// sequential design is feasible; the hysteresis rule (min_improvement)
  /// keeps the table's *current* catalog layout and codecs across
  /// cost-near-equal alternatives, preventing DDL churn on layout flips
  /// exactly as on codec swaps.
  JointSearchResult SearchJoint(
      const std::vector<WeightedQuery>& workload,
      const std::map<std::string, std::vector<LayoutCandidate>>& candidates)
      const;

 private:
  WorkloadCostEstimator estimator_;
  const Catalog* catalog_;
  EncodingSearchOptions options_;
};

}  // namespace hsdb

#endif  // HSDB_CORE_ENCODING_SEARCH_H_
