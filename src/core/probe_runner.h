// EngineProbeRunner: the ProbeRunner that measures the bundled engine. It
// lazily builds probe tables (cached per configuration) and times probe
// queries through the regular Database execution path.
#ifndef HSDB_CORE_PROBE_RUNNER_H_
#define HSDB_CORE_PROBE_RUNNER_H_

#include <map>
#include <memory>
#include <string>

#include "core/calibration.h"
#include "executor/database.h"

namespace hsdb {

class EngineProbeRunner : public ProbeRunner {
 public:
  struct Options {
    /// Repetitions per read probe (median taken).
    int repeats = 3;
    /// Rows inserted per insert probe (averaged per statement).
    size_t insert_batch = 256;
  };

  EngineProbeRunner() : EngineProbeRunner(Options{}) {}
  explicit EngineProbeRunner(Options options) : options_(options) {}

  ProbeResult MeasureAggregation(StoreType store, AggFn fn, DataType type,
                                 bool grouped, bool filtered, size_t rows,
                                 uint64_t distinct) override;
  ProbeResult MeasureSelect(StoreType store, size_t selected_columns,
                            double selectivity, bool use_index,
                            size_t rows) override;
  ProbeResult MeasurePointSelect(StoreType store, size_t rows) override;
  ProbeResult MeasureInsert(StoreType store, size_t rows) override;
  ProbeResult MeasureUpdate(StoreType store, size_t affected_columns,
                            size_t affected_rows, size_t rows) override;
  ProbeResult MeasureJoin(StoreType fact_store, StoreType dim_store,
                          size_t fact_rows, size_t dim_rows) override;
  ProbeResult MeasureStitch(size_t rows) override;
  ProbeResult MeasureParallelScan(StoreType store, int dop,
                                  size_t rows) override;

  /// Releases all cached probe databases.
  void Evict() { cache_.clear(); }

 private:
  struct Entry {
    std::unique_ptr<Database> db;
    int64_t next_insert_id = 0;
    double compression_rate = 1.0;
  };

  /// Probe table of `rows` rows in `store` with `distinct` distinct values
  /// in the measure column (0 = all distinct); `indexed` adds row-store
  /// sorted indexes on the id and filter columns. `dop` is the database's
  /// degree of parallelism: 1 for every serial probe (so an HSDB_THREADS
  /// environment does not leak parallelism into base costs), > 1 only for
  /// the parallel scan probe.
  Entry& ProbeTable(StoreType store, size_t rows, uint64_t distinct,
                    bool indexed, int dop = 1);
  Entry& JoinTables(StoreType fact_store, StoreType dim_store,
                    size_t fact_rows, size_t dim_rows);
  Entry& StitchTable(size_t rows, bool split);

  double TimeQuery(Database& db, const Query& query);

  Options options_;
  std::map<std::string, Entry> cache_;
};

}  // namespace hsdb

#endif  // HSDB_CORE_PROBE_RUNNER_H_
