#include "core/advisor.h"

#include <algorithm>
#include <sstream>

#include "core/workload_model.h"

namespace hsdb {

namespace {

/// True when any piece of the layout is column-resident (and therefore
/// stores compressed, per-column-encoded segments).
bool HasColumnPiece(const TableLayout& layout) {
  if (layout.base_store == StoreType::kColumn) return true;
  return layout.horizontal.has_value() &&
         layout.horizontal->hot_store == StoreType::kColumn;
}

/// " ENCODING (col CODEC, ...)" clause naming the codec the compression
/// subsystem picks per column (from the catalog statistics). Covers only
/// the columns that actually land in a column-store piece: a vertical
/// split's row-store columns are skipped (the replicated primary key stays
/// column-encoded in the base piece).
std::string EncodingClause(const Schema& schema, const TableLayout& layout,
                           const TableStatistics* stats) {
  if (stats == nullptr || stats->columns.empty()) return "";
  std::ostringstream os;
  os << " ENCODING (";
  bool first = true;
  for (ColumnId c = 0; c < schema.num_columns(); ++c) {
    if (layout.vertical.has_value() && !schema.IsPrimaryKeyColumn(c)) {
      const std::vector<ColumnId>& rs = layout.vertical->row_store_columns;
      if (std::find(rs.begin(), rs.end(), c) != rs.end()) continue;
    }
    if (!first) os << ", ";
    first = false;
    os << schema.column(c).name << " "
       << EncodingName(stats->column(c).encoding);
  }
  os << ")";
  return os.str();
}

std::string LayoutDdl(const std::string& table, const LayoutContext& ctx,
                      const Schema& schema, const TableStatistics* stats) {
  std::ostringstream os;
  const TableLayout& layout = ctx.layout;
  const std::string encodings =
      HasColumnPiece(layout) ? EncodingClause(schema, layout, stats) : "";
  if (!layout.IsPartitioned()) {
    os << "ALTER TABLE " << table << " STORE "
       << StoreTypeName(layout.base_store) << encodings << ";";
    return os.str();
  }
  os << "ALTER TABLE " << table << " PARTITION BY (";
  bool first = true;
  if (layout.horizontal.has_value()) {
    os << "ROWS " << schema.column(layout.horizontal->column).name
       << " >= " << layout.horizontal->boundary << " TO "
       << StoreTypeName(layout.horizontal->hot_store) << " STORE";
    first = false;
  }
  if (layout.vertical.has_value()) {
    if (!first) os << "; ";
    os << "COLUMNS (";
    for (size_t i = 0; i < layout.vertical->row_store_columns.size(); ++i) {
      if (i > 0) os << ", ";
      os << schema.column(layout.vertical->row_store_columns[i]).name;
    }
    os << ") TO ROW STORE";
  }
  os << ") BASE " << StoreTypeName(layout.base_store) << encodings << ";";
  return os.str();
}

}  // namespace

std::string Recommendation::Summary() const {
  std::ostringstream os;
  os << "Storage advisor recommendation\n";
  os << "  estimated workload cost: " << estimated_cost_ms << " ms\n";
  os << "  baselines: RS-only " << rs_only_cost_ms << " ms, CS-only "
     << cs_only_cost_ms << " ms, table-level " << table_level_cost_ms
     << " ms\n";
  for (const std::string& r : rationale) os << "  - " << r << "\n";
  for (const std::string& d : ddl) os << "  " << d << "\n";
  return os.str();
}

StorageAdvisor::StorageAdvisor(Database* db, AdvisorOptions options)
    : db_(db),
      options_(options),
      model_(std::make_unique<CostModel>()),
      recorder_(std::make_unique<WorkloadRecorder>(
          &db->catalog(), options.recorder_sample)) {}

StorageAdvisor::~StorageAdvisor() {
  if (recording_) db_->set_observer(nullptr);
}

CalibrationReport StorageAdvisor::InitializeCostModel() {
  EngineProbeRunner runner;
  return InitializeCostModel(runner);
}

CalibrationReport StorageAdvisor::InitializeCostModel(ProbeRunner& runner) {
  CalibrationReport report = Calibrate(runner, options_.calibration);
  model_ = std::make_unique<CostModel>(report.params);
  return report;
}

void StorageAdvisor::SetCostModelParams(CostModelParams params) {
  model_ = std::make_unique<CostModel>(std::move(params));
}

Status StorageAdvisor::EnsureStatistics(
    const std::vector<WeightedQuery>& workload) {
  for (const WeightedQuery& wq : workload) {
    for (const std::string& name : TablesOf(wq.query)) {
      if (db_->catalog().GetTable(name) == nullptr) {
        return Status::NotFound("workload references unknown table " + name);
      }
      if (db_->catalog().GetStatistics(name) == nullptr) {
        HSDB_RETURN_IF_ERROR(db_->catalog().UpdateStatistics(name));
      }
    }
  }
  return Status::OK();
}

Result<Recommendation> StorageAdvisor::RecommendOffline(
    const std::vector<Query>& workload) {
  return RecommendOffline(ToWeighted(workload));
}

Result<Recommendation> StorageAdvisor::RecommendOffline(
    const std::vector<WeightedQuery>& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  HSDB_RETURN_IF_ERROR(EnsureStatistics(workload));
  // Offline mode derives the extended statistics from the supplied workload
  // itself (paper §4: recorded or expected workload information).
  WorkloadStatistics stats;
  for (const WeightedQuery& wq : workload) {
    uint64_t repeat = std::max<uint64_t>(
        1, static_cast<uint64_t>(wq.weight + 0.5));
    for (uint64_t i = 0; i < repeat; ++i) {
      stats.Record(wq.query, db_->catalog());
    }
  }
  return Recommend(workload, stats);
}

void StorageAdvisor::StartRecording() {
  recorder_->Reset();
  db_->set_observer(recorder_.get());
  recording_ = true;
}

void StorageAdvisor::StopRecording() {
  db_->set_observer(nullptr);
  recording_ = false;
}

Result<Recommendation> StorageAdvisor::RecommendOnline() {
  if (!recording_) {
    return Status::FailedPrecondition(
        "online mode requires StartRecording()");
  }
  if (recorder_->seen_queries() == 0) {
    return Status::FailedPrecondition("no queries recorded yet");
  }
  std::vector<WeightedQuery> workload;
  if (recorder_->recorded_queries().empty()) {
    // Statistics-only mode (no raw query log retained): reconstruct a
    // representative weighted workload from the extended statistics.
    workload = BuildWorkloadModel(recorder_->statistics(), db_->catalog());
    if (workload.empty()) {
      return Status::FailedPrecondition(
          "statistics do not describe any known table");
    }
  } else {
    // Scale the retained sample back to the full stream volume.
    double scale = static_cast<double>(recorder_->seen_queries()) /
                   static_cast<double>(recorder_->recorded_queries().size());
    workload.reserve(recorder_->recorded_queries().size());
    for (const Query& q : recorder_->recorded_queries()) {
      workload.push_back(WeightedQuery{q, scale});
    }
  }
  HSDB_RETURN_IF_ERROR(EnsureStatistics(workload));
  return Recommend(workload, recorder_->statistics());
}

Result<Recommendation> StorageAdvisor::Recommend(
    const std::vector<WeightedQuery>& workload,
    const WorkloadStatistics& stats) {
  Recommendation rec;

  TableAdvisor table_advisor(model_.get(), &db_->catalog(),
                             options_.table_options);
  TableAdvisorResult table_result = table_advisor.Recommend(workload);
  rec.table_level_assignment = table_result.assignment;
  rec.rs_only_cost_ms = table_result.rs_only_cost_ms;
  rec.cs_only_cost_ms = table_result.cs_only_cost_ms;
  rec.table_level_cost_ms = table_result.estimated_cost_ms;

  if (options_.enable_partitioning) {
    PartitionAdvisor partition_advisor(model_.get(), &db_->catalog(),
                                       options_.partition_options);
    PartitionAdvisorResult part =
        partition_advisor.Recommend(workload, stats,
                                    table_result.assignment);
    rec.layouts = part.layouts;
    rec.estimated_cost_ms = part.estimated_cost_ms;
    rec.rationale = part.rationale;
  } else {
    for (const auto& [name, store] : table_result.assignment) {
      rec.layouts.emplace(name, LayoutContext::SingleStore(store));
      rec.rationale.push_back(name + ": " +
                              std::string(StoreTypeName(store)));
    }
    rec.estimated_cost_ms = table_result.estimated_cost_ms;
  }

  // Emit DDL only for tables whose layout actually changes. Column-store
  // targets name the per-column encoding the compression subsystem picks.
  for (const auto& [name, ctx] : rec.layouts) {
    const LogicalTable* table = db_->catalog().GetTable(name);
    if (table == nullptr) continue;
    if (table->layout() == ctx.layout) continue;
    const TableStatistics* stats = db_->catalog().GetStatistics(name);
    rec.ddl.push_back(LayoutDdl(name, ctx, table->schema(), stats));
  }
  return rec;
}

Status StorageAdvisor::Apply(const Recommendation& recommendation) {
  for (const auto& [name, ctx] : recommendation.layouts) {
    HSDB_RETURN_IF_ERROR(db_->ApplyLayout(name, ctx.layout));
  }
  return Status::OK();
}

}  // namespace hsdb
