#include "core/advisor.h"

#include <algorithm>
#include <sstream>

#include "common/stopwatch.h"
#include "core/workload_model.h"
#include "online/controller.h"
#include "telemetry/metrics.h"

namespace hsdb {

namespace {

/// " ENCODING (col CODEC, ...)" clause naming the codec of every column
/// that lands in a column-store piece. The codecs are the encoding search's
/// cost-derived assignment (LayoutContext::encodings) when present, and the
/// picker's choice from the catalog statistics otherwise. A vertical
/// split's row-store columns are skipped (the replicated primary key stays
/// column-encoded in the base piece).
std::string EncodingClause(const Schema& schema, const LayoutContext& ctx,
                           const TableStatistics* stats) {
  const bool searched = ctx.encodings.size() == schema.num_columns();
  if (!searched && (stats == nullptr || stats->columns.empty())) return "";
  const TableLayout& layout = ctx.layout;
  std::ostringstream os;
  os << " ENCODING (";
  bool first = true;
  for (ColumnId c = 0; c < schema.num_columns(); ++c) {
    if (layout.vertical.has_value() && !schema.IsPrimaryKeyColumn(c)) {
      const std::vector<ColumnId>& rs = layout.vertical->row_store_columns;
      if (std::find(rs.begin(), rs.end(), c) != rs.end()) continue;
    }
    if (!first) os << ", ";
    first = false;
    os << schema.column(c).name << " "
       << EncodingName(searched ? ctx.encodings[c]
                                : stats->column(c).encoding);
  }
  os << ")";
  return os.str();
}

std::string LayoutDdl(const std::string& table, const LayoutContext& ctx,
                      const Schema& schema, const TableStatistics* stats,
                      const std::optional<double>& memory_budget_bytes) {
  std::ostringstream os;
  const TableLayout& layout = ctx.layout;
  std::string encodings;
  if (HasColumnStorePiece(layout)) {
    encodings = EncodingClause(schema, ctx, stats);
    // Budget mode: record the constraint the encoding assignment was
    // solved under — only where an assignment exists (tables without
    // statistics are skipped by the search and get no clause).
    if (!encodings.empty() && memory_budget_bytes.has_value()) {
      std::ostringstream budget;
      budget << " WITH (MEMORY_BUDGET "
             << static_cast<uint64_t>(*memory_budget_bytes) << ")";
      encodings += budget.str();
    }
  }
  if (!layout.IsPartitioned()) {
    os << "ALTER TABLE " << table << " STORE "
       << StoreTypeName(layout.base_store) << encodings << ";";
    return os.str();
  }
  os << "ALTER TABLE " << table << " PARTITION BY (";
  bool first = true;
  if (layout.horizontal.has_value()) {
    os << "ROWS " << schema.column(layout.horizontal->column).name
       << " >= " << layout.horizontal->boundary << " TO "
       << StoreTypeName(layout.horizontal->hot_store) << " STORE";
    first = false;
  }
  if (layout.vertical.has_value()) {
    if (!first) os << "; ";
    os << "COLUMNS (";
    for (size_t i = 0; i < layout.vertical->row_store_columns.size(); ++i) {
      if (i > 0) os << ", ";
      os << schema.column(layout.vertical->row_store_columns[i]).name;
    }
    os << ") TO ROW STORE";
  }
  os << ") BASE " << StoreTypeName(layout.base_store) << encodings << ";";
  return os.str();
}

}  // namespace

std::string Recommendation::Summary() const {
  std::ostringstream os;
  os << "Storage advisor recommendation\n";
  if (!solved_for.empty()) {
    os << "  solved for: " << solved_for.total_queries
       << " queries, OLAP fraction " << solved_for.olap_fraction;
    if (solved_epoch > 0) os << ", epoch " << solved_epoch;
    os << "\n";
  }
  os << "  estimated workload cost: " << estimated_cost_ms << " ms\n";
  os << "  baselines: RS-only " << rs_only_cost_ms << " ms, CS-only "
     << cs_only_cost_ms << " ms, table-level " << table_level_cost_ms
     << " ms";
  if (sequential_cost_ms > 0.0) {
    os << ", sequential pipeline " << sequential_cost_ms << " ms";
  }
  os << "\n";
  if (encoding_footprint_bytes > 0.0) {
    os << "  encodings: " << encoding_footprint_bytes << " bytes";
    if (memory_budget_bytes.has_value()) {
      os << " (budget " << *memory_budget_bytes << " bytes, "
         << (encoding_budget_feasible ? "met" : "NOT met") << ")";
    }
    os << ", picker baseline " << encoding_picker_cost_ms << " ms\n";
  }
  if (!encoding_footprint_by_table.empty() &&
      memory_budget_bytes.has_value() && *memory_budget_bytes > 0.0) {
    os << "  budget attribution:\n";
    for (const auto& [name, bytes] : encoding_footprint_by_table) {
      os << "    " << name << ": " << bytes << " bytes ("
         << 100.0 * bytes / *memory_budget_bytes << "% of budget)\n";
    }
  }
  for (const std::string& r : rationale) os << "  - " << r << "\n";
  for (const std::string& d : ddl) os << "  " << d << "\n";
  return os.str();
}

StorageAdvisor::StorageAdvisor(Database* db, AdvisorOptions options)
    : db_(db),
      options_(options),
      model_(std::make_unique<CostModel>()),
      recorder_(std::make_unique<WorkloadRecorder>(
          &db->catalog(), options.recorder_sample,
          options.recorder_hot_keys, &db->metrics())) {
  // Cost scans at the database's actual degree of parallelism and — when a
  // serving front-end batches queries — at its shared-scan width.
  model_->set_dop(db_->num_threads());
  model_->set_batch_width(options_.batch_width);
  // Close the loop between prediction and observation: every query the
  // database executes from now on is costed by the advisor's model under
  // the catalog's *current* layouts, so the result carries an
  // observed-vs-predicted residual (Database::cost_feedback()). The lambda
  // reads model_ at call time — InitializeCostModel swapping in calibrated
  // parameters takes effect immediately.
  db_->set_cost_predictor([this](const Query& query) {
    WorkloadCostEstimator estimator(model_.get(), &db_->catalog());
    return estimator.QueryCost(query, [this](const std::string& name) {
      const LogicalTable* table = db_->catalog().GetTable(name);
      if (table == nullptr) return LayoutContext{};
      return CurrentLayoutContext(*table, db_->catalog().GetStatistics(name));
    });
  });
}

StorageAdvisor::~StorageAdvisor() {
  // The controller's background thread ticks against the recorder and the
  // database; join it before detaching anything.
  controller_.reset();
  if (recording_) db_->set_observer(nullptr);
  db_->set_cost_predictor(nullptr);
}

CalibrationReport StorageAdvisor::InitializeCostModel() {
  EngineProbeRunner runner;
  return InitializeCostModel(runner);
}

CalibrationReport StorageAdvisor::InitializeCostModel(ProbeRunner& runner) {
  CalibrationReport report = Calibrate(runner, options_.calibration);
  model_ = std::make_unique<CostModel>(report.params);
  model_->set_dop(db_->num_threads());
  model_->set_batch_width(options_.batch_width);
  return report;
}

void StorageAdvisor::SetCostModelParams(CostModelParams params) {
  model_ = std::make_unique<CostModel>(std::move(params));
  model_->set_dop(db_->num_threads());
  model_->set_batch_width(options_.batch_width);
}

Status StorageAdvisor::EnsureStatistics(
    const std::vector<WeightedQuery>& workload, bool refresh) {
  for (const WeightedQuery& wq : workload) {
    for (const std::string& name : TablesOf(wq.query)) {
      if (db_->catalog().GetTable(name) == nullptr) {
        return Status::NotFound("workload references unknown table " + name);
      }
      if (refresh || db_->catalog().GetStatistics(name) == nullptr) {
        HSDB_RETURN_IF_ERROR(db_->catalog().UpdateStatistics(name));
      }
    }
  }
  return Status::OK();
}

Result<Recommendation> StorageAdvisor::RecommendOffline(
    const std::vector<Query>& workload) {
  return RecommendOffline(ToWeighted(workload));
}

Result<Recommendation> StorageAdvisor::RecommendOffline(
    const std::vector<WeightedQuery>& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  HSDB_RETURN_IF_ERROR(EnsureStatistics(workload));
  // Offline mode derives the extended statistics from the supplied workload
  // itself (paper §4: recorded or expected workload information).
  WorkloadStatistics stats;
  for (const WeightedQuery& wq : workload) {
    uint64_t repeat = std::max<uint64_t>(
        1, static_cast<uint64_t>(wq.weight + 0.5));
    for (uint64_t i = 0; i < repeat; ++i) {
      stats.Record(wq.query, db_->catalog());
    }
  }
  return Recommend(workload, stats);
}

void StorageAdvisor::StartRecording() {
  recorder_->Reset();
  db_->set_observer(recorder_.get());
  recording_ = true;
}

void StorageAdvisor::StopRecording() {
  db_->set_observer(nullptr);
  recording_ = false;
}

AdaptationController& StorageAdvisor::StartAutoAdapt(
    const AdaptationOptions& options) {
  if (!recording_) StartRecording();
  controller_ = std::make_unique<AdaptationController>(this, db_, options);
  return *controller_;
}

AdaptationController& StorageAdvisor::StartAutoAdapt() {
  return StartAutoAdapt(AdaptationOptions{});
}

void StorageAdvisor::StopAutoAdapt() { controller_.reset(); }

Result<Recommendation> StorageAdvisor::RecommendOnline() {
  if (!recording_) {
    return Status::FailedPrecondition(
        "online mode requires StartRecording()");
  }
  if (recorder_->epoch_seen_queries() == 0) {
    return Status::FailedPrecondition(
        "no queries recorded in the current epoch");
  }
  // Consume the epoch atomically: snapshot the extended statistics and the
  // sample, then roll the recorder so queries arriving during (or after)
  // the search land in the next epoch — the search below never sees a mix
  // of two windows.
  const WorkloadStatistics stats = recorder_->SnapshotStatistics();
  const std::vector<Query> sample = recorder_->SnapshotQueries();
  const uint64_t epoch_seen = recorder_->epoch_seen_queries();
  const uint64_t epoch = recorder_->epoch();
  recorder_->BeginEpoch();

  std::vector<WeightedQuery> workload;
  if (sample.empty()) {
    // Statistics-only mode (no raw query log retained): reconstruct a
    // representative weighted workload from the extended statistics.
    workload = BuildWorkloadModel(stats, db_->catalog());
    if (workload.empty()) {
      return Status::FailedPrecondition(
          "statistics do not describe any known table");
    }
  } else {
    // Scale the retained sample back to the epoch's full stream volume.
    double scale = static_cast<double>(epoch_seen) /
                   static_cast<double>(sample.size());
    workload.reserve(sample.size());
    for (const Query& q : sample) {
      workload.push_back(WeightedQuery{q, scale});
    }
  }
  // Refresh the catalog statistics of every touched table (memoized on the
  // table's data_version, so unmutated tables are not re-profiled): the
  // search pairs this epoch's workload profile with this epoch's data
  // statistics instead of whatever an earlier epoch left behind.
  HSDB_RETURN_IF_ERROR(EnsureStatistics(workload, /*refresh=*/true));
  Result<Recommendation> rec = Recommend(workload, stats);
  if (rec.ok()) rec->solved_epoch = epoch;
  return rec;
}

Result<Recommendation> StorageAdvisor::Recommend(
    const std::vector<WeightedQuery>& workload,
    const WorkloadStatistics& stats) {
  // The search holds raw GetTable/GetStatistics pointers across its whole
  // run while a concurrent migration cut-over may retire versions: pin the
  // reclamation epoch for the duration. Mutable table state is never read
  // here — EnsureStatistics guarantees every costed table has a statistics
  // object, so the estimator works from those immutable snapshots plus
  // immutable table fields (layout, schema).
  EpochPin pin(&db_->catalog().epochs());
  // Search telemetry: phase timings, search effort and the stability /
  // budget-repair outcomes. Registration is idempotent and Recommend runs
  // at adaptation frequency, so fetching handles here is fine.
  telemetry::MetricsRegistry& reg = db_->metrics();
  const bool telemetry_on = telemetry::kCompiledIn && reg.enabled();
  auto observe_phase = [&](const char* phase, double ms) {
    if (!telemetry_on) return;
    reg.GetHistogram("hsdb_advisor_phase_ms",
                     "Advisor search phase wall time in milliseconds.",
                     {{"phase", phase}})
        .Observe(ms);
  };
  Stopwatch total_sw;

  Recommendation rec;
  // Stamp what the search is about to be solved for: the drift detector
  // compares live statistics against this snapshot, and the migration
  // planner orders steps by gain on this workload.
  rec.solved_for = WorkloadProfile::Snapshot(stats);
  rec.solved_workload = workload;

  Stopwatch phase_sw;
  TableAdvisor table_advisor(model_.get(), &db_->catalog(),
                             options_.table_options);
  TableAdvisorResult table_result = table_advisor.Recommend(workload);
  observe_phase("table", phase_sw.ElapsedMs());
  rec.table_level_assignment = table_result.assignment;
  rec.rs_only_cost_ms = table_result.rs_only_cost_ms;
  rec.cs_only_cost_ms = table_result.cs_only_cost_ms;
  rec.table_level_cost_ms = table_result.estimated_cost_ms;

  std::map<std::string, std::vector<LayoutCandidate>> heuristic_candidates;
  if (options_.enable_partitioning) {
    phase_sw.Restart();
    PartitionAdvisor partition_advisor(model_.get(), &db_->catalog(),
                                       options_.partition_options);
    PartitionAdvisorResult part =
        partition_advisor.Recommend(workload, stats,
                                    table_result.assignment);
    observe_phase("partition", phase_sw.ElapsedMs());
    rec.layouts = part.layouts;
    rec.estimated_cost_ms = part.estimated_cost_ms;
    rec.rationale = part.rationale;
    heuristic_candidates = std::move(part.candidates);
  } else {
    for (const auto& [name, store] : table_result.assignment) {
      rec.layouts.emplace(name, LayoutContext::SingleStore(store));
      rec.rationale.push_back(name + ": " +
                              std::string(StoreTypeName(store)));
    }
    rec.estimated_cost_ms = table_result.estimated_cost_ms;
  }
  rec.sequential_cost_ms = rec.estimated_cost_ms;

  size_t evaluated_assignments = 0;
  size_t repair_iterations = 0;
  bool hysteresis_applied = false;
  phase_sw.Restart();
  EncodingSearch encoding_search(model_.get(), &db_->catalog(),
                                 options_.encoding);
  if (options_.joint_budget_search) {
    // Joint mode: the staged pick anchors candidate 0 of every table, the
    // plain single-store layouts and the PartitionAdvisor's heuristic
    // splits widen the space, and the table's current layout rides along so
    // the hysteresis rule can protect it across flips. The search then
    // trades footprint across layout flips and codec swaps under the one
    // shared memory budget.
    std::map<std::string, std::vector<LayoutCandidate>> candidates;
    for (const auto& [name, ctx] : rec.layouts) {
      std::vector<LayoutCandidate> list;
      auto add = [&](const LayoutContext& candidate, std::string reason) {
        for (const LayoutCandidate& existing : list) {
          if (existing.context.layout == candidate.layout) return;
        }
        list.push_back({candidate, std::move(reason)});
      };
      add(ctx, "sequential pick");
      add(LayoutContext::SingleStore(StoreType::kRow),
          "unpartitioned ROW store");
      add(LayoutContext::SingleStore(StoreType::kColumn),
          "unpartitioned COLUMN store");
      auto hc = heuristic_candidates.find(name);
      if (hc != heuristic_candidates.end()) {
        for (const LayoutCandidate& candidate : hc->second) {
          add(candidate.context, candidate.reason);
        }
      }
      if (const LogicalTable* table = db_->catalog().GetTable(name)) {
        add(CurrentLayoutContext(*table, db_->catalog().GetStatistics(name)),
            "current layout");
      }
      candidates.emplace(name, std::move(list));
    }
    JointSearchResult joint = encoding_search.SearchJoint(workload,
                                                          candidates);
    evaluated_assignments = joint.evaluated_assignments;
    repair_iterations = joint.repair_iterations;
    hysteresis_applied = joint.hysteresis_applied;
    if (!joint.tables.empty()) {
      for (const auto& [name, design] : joint.tables) {
        rec.layouts.at(name) = design.context;
        rec.encoding_footprint_by_table[name] = design.footprint_bytes;
        // Report a move only when the chosen layout deviates from the
        // staged pick AND from what the catalog already has (hysteresis
        // keeping the current layout against a drifted staged pick is not
        // a move — no DDL is emitted for it either).
        const LogicalTable* table = db_->catalog().GetTable(name);
        if (design.layout_changed && table != nullptr &&
            !(table->layout() == design.context.layout)) {
          std::ostringstream flip;
          flip << name << ": joint budget search moved the layout to "
               << design.context.layout.ToString() << " (" << design.reason
               << ", footprint " << design.footprint_bytes << " bytes)";
          rec.rationale.push_back(flip.str());
        }
      }
      rec.estimated_cost_ms = joint.cost_ms;
      rec.sequential_cost_ms = joint.sequential_cost_ms;
      rec.encoding_footprint_bytes = joint.footprint_bytes;
      rec.encoding_picker_cost_ms = joint.picker_cost_ms;
      rec.memory_budget_bytes = options_.encoding.memory_budget_bytes;
      rec.encoding_budget_feasible = joint.feasible;
      std::ostringstream note;
      note << "joint layout+encoding search ("
           << (joint.exact ? "exact" : "greedy") << ", "
           << joint.evaluated_assignments << " designs): cost "
           << joint.cost_ms << " ms vs sequential pipeline "
           << joint.sequential_cost_ms << " ms, footprint "
           << joint.footprint_bytes << " bytes";
      if (options_.encoding.memory_budget_bytes.has_value()) {
        note << ", budget " << *options_.encoding.memory_budget_bytes
             << " bytes " << (joint.feasible ? "met" : "NOT met");
        if (!joint.feasible) {
          note << " (floor " << joint.min_footprint_bytes << " bytes)";
        }
      }
      rec.rationale.push_back(note.str());
    }
  } else {
    // Staged mode: per-column encoding search over the frozen layouts —
    // the picker's heuristic codec choices replaced by the cost-optimal
    // assignment under the configured memory budget.
    EncodingSearchResult encodings =
        encoding_search.Search(workload, rec.layouts);
    evaluated_assignments = encodings.evaluated_assignments;
    repair_iterations = encodings.repair_iterations;
    hysteresis_applied = encodings.hysteresis_applied;
    if (!encodings.tables.empty()) {
      for (const auto& [name, assignment] : encodings.tables) {
        rec.layouts.at(name).encodings = assignment.encodings;
        rec.encoding_footprint_by_table[name] = assignment.footprint_bytes;
      }
      rec.estimated_cost_ms = encodings.cost_ms;
      rec.sequential_cost_ms = encodings.cost_ms;
      rec.encoding_footprint_bytes = encodings.footprint_bytes;
      rec.encoding_picker_cost_ms = encodings.picker_cost_ms;
      rec.memory_budget_bytes = options_.encoding.memory_budget_bytes;
      rec.encoding_budget_feasible = encodings.feasible;
      std::ostringstream note;
      note << "encoding search (" << (encodings.exact ? "exact" : "greedy")
           << ", " << encodings.evaluated_assignments
           << " assignments): footprint " << encodings.footprint_bytes
           << " bytes vs picker " << encodings.picker_footprint_bytes
           << " bytes";
      if (options_.encoding.memory_budget_bytes.has_value()) {
        note << ", budget " << *options_.encoding.memory_budget_bytes
             << " bytes " << (encodings.feasible ? "met" : "NOT met");
        if (!encodings.feasible) {
          note << " (floor " << encodings.min_footprint_bytes << " bytes)";
        }
      }
      rec.rationale.push_back(note.str());
    }
  }

  // Emit DDL for tables whose layout changes — or whose cost-derived
  // encodings differ from the codecs the store currently has (or would
  // pick), so encoding-only recommendations stay actionable. Budget mode
  // records the constraint in a WITH (MEMORY_BUDGET ...) clause.
  for (const auto& [name, ctx] : rec.layouts) {
    const LogicalTable* table = db_->catalog().GetTable(name);
    if (table == nullptr) continue;
    const TableStatistics* stats = db_->catalog().GetStatistics(name);
    if (table->layout() == ctx.layout &&
        !EncodingsDiffer(table->schema(), ctx, stats)) {
      continue;
    }
    rec.ddl.push_back(LayoutDdl(name, ctx, table->schema(), stats,
                                options_.encoding.memory_budget_bytes));
  }

  if (telemetry_on) {
    observe_phase(options_.joint_budget_search ? "joint_search"
                                               : "encoding_search",
                  phase_sw.ElapsedMs());
    observe_phase("total", total_sw.ElapsedMs());
    reg.GetCounter("hsdb_advisor_searches_total",
                   "Full advisor recommendation searches run.")
        .Increment();
    reg.GetCounter("hsdb_advisor_evaluated_assignments_total",
                   "Workload cost evaluations performed by the "
                   "encoding/joint searches (search effort).")
        .Increment(evaluated_assignments);
    reg.GetCounter("hsdb_advisor_budget_repair_iterations_total",
                   "Greedy budget-repair evictions across all searches.")
        .Increment(repair_iterations);
    if (hysteresis_applied) {
      reg.GetCounter("hsdb_advisor_hysteresis_rejections_total",
                     "Searches where the hysteresis rule kept the incumbent "
                     "design against a marginal challenger.")
          .Increment();
    }
  }
  return rec;
}

Status StorageAdvisor::Apply(const Recommendation& recommendation) {
  // The applied design is now the one solved for this profile — the
  // baseline the adaptation loop measures drift against.
  if (!recommendation.solved_for.empty()) {
    solved_profile_ = recommendation.solved_for;
  }
  for (const auto& [name, ctx] : recommendation.layouts) {
    // Only act on tables the recommendation actually changes — same
    // criterion as the DDL emission — so unchanged tables are not
    // rematerialized just to pin the codecs they already use.
    const LogicalTable* table = db_->catalog().GetTable(name);
    if (table == nullptr) continue;
    if (table->layout() == ctx.layout &&
        !EncodingsDiffer(table->schema(), ctx,
                         db_->catalog().GetStatistics(name))) {
      continue;
    }
    // The searched per-column codecs are applied with the layout: the
    // rebuild's bulk-load merge encodes every column-store piece with the
    // recommended codec instead of re-running the footprint-greedy picker.
    HSDB_RETURN_IF_ERROR(db_->ApplyLayout(name, ctx.layout, ctx.encodings));
  }
  return Status::OK();
}

}  // namespace hsdb
