// StorageAdvisor: the tool the paper contributes. Wraps the full
// recommendation process of Fig. 5:
//
//   initialize cost model (calibration probes)
//     -> offline mode: initial recommendation from an expected/recorded
//        workload
//     -> online mode: record extended statistics while the system runs,
//        periodically recompute adaptation recommendations
//
// Recommendations report the estimated costs of RS-only / CS-only /
// table-level / partitioned layouts, carry executable layout changes and
// pseudo-DDL for the administrator, and can be applied to the database.
#ifndef HSDB_CORE_ADVISOR_H_
#define HSDB_CORE_ADVISOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/encoding_search.h"
#include "core/partition_advisor.h"
#include "core/probe_runner.h"
#include "core/table_advisor.h"
#include "online/drift.h"
#include "workload/recorder.h"

namespace hsdb {

class AdaptationController;
struct AdaptationOptions;

struct AdvisorOptions {
  /// Consider horizontal/vertical partitioning (§3.2); with false the
  /// advisor stops at table-level recommendations (§3.1).
  bool enable_partitioning = true;
  /// Probe-suite configuration for InitializeCostModel (reference rows,
  /// sweep points, whether to run the per-codec microprobes).
  CalibrationOptions calibration;
  /// Search strategy of the table-level RS/CS assignment (exhaustive vs
  /// hill climbing, join handling).
  TableAdvisor::Options table_options;
  /// Horizontal/vertical split enumeration limits and validation.
  PartitionAdvisor::Options partition_options;
  /// Per-column encoding search over the chosen layouts: candidates, exact
  /// fallback threshold and — the user knob — encoding.memory_budget_bytes,
  /// the total memory budget for encoded column-store segments.
  /// Recommendations under a budget emit a WITH (MEMORY_BUDGET ...) DDL
  /// clause and cost-derived ENCODING (...) assignments.
  EncodingSearchOptions encoding;
  /// Joint layout+encoding search (default): layout candidates and codec
  /// assignments are explored together under the one shared memory budget,
  /// so a binding budget can flip a table's layout (row store, narrower
  /// hybrid split) instead of only downgrading codecs. With false the
  /// advisor restores the staged pipeline: TableAdvisor/PartitionAdvisor
  /// freeze the layouts, then the encoding search runs on them.
  bool joint_budget_search = true;
  /// Raw queries retained by the online recorder (reservoir sample).
  size_t recorder_sample = 4096;
  /// Counters of the online recorder's per-table hot-update-key sketch
  /// (SpaceSaving capacity): any key updated more than 1/capacity of the
  /// time is guaranteed tracked. Larger = finer hot-set resolution at a
  /// little more recording memory.
  size_t recorder_hot_keys = 64;
  /// Expected shared-scan batch width when queries arrive through the
  /// serving front-end (SocketServer + BatchExecutor): how many compatible
  /// queries co-run on one decode pass, i.e. CostModel::set_batch_width.
  /// Server deployments mirror their measured hsdb_server_batch_width
  /// here so the advisor weighs layouts by the amortized per-query cost a
  /// co-running client actually pays. 1 (the default) costs every query
  /// stand-alone — the right setting for embedded/library use.
  int batch_width = 1;
};

struct Recommendation {
  /// Chosen layout per table (with locality context for the estimator;
  /// LayoutContext::encodings carries the cost-derived per-column codecs
  /// the encoding search selected).
  std::map<std::string, LayoutContext> layouts;
  /// Table-level assignment (before partitioning), for comparison.
  std::map<std::string, StoreType> table_level_assignment;

  /// Estimated workload cost (ms) of the recommended design and of the
  /// comparison baselines the paper reports: everything in the row store,
  /// everything in the column store, and the table-level (unpartitioned)
  /// assignment.
  double estimated_cost_ms = 0.0;
  double rs_only_cost_ms = 0.0;
  double cs_only_cost_ms = 0.0;
  double table_level_cost_ms = 0.0;

  /// Encoding-search outcome: estimated footprint of the chosen encodings,
  /// the workload cost the picker's heuristic assignment would have had,
  /// the budget (echoed from AdvisorOptions) and whether it was met.
  double encoding_footprint_bytes = 0.0;
  double encoding_picker_cost_ms = 0.0;
  std::optional<double> memory_budget_bytes;
  bool encoding_budget_feasible = true;

  /// Joint-search reporting: what the staged layout-then-encoding pipeline
  /// would have cost (the joint result never exceeds it when the staged
  /// design is budget-feasible; equal to estimated_cost_ms when the joint
  /// mode is disabled), and the per-table encoded footprint the chosen
  /// design charges against the budget (budget attribution).
  double sequential_cost_ms = 0.0;
  std::map<std::string, double> encoding_footprint_by_table;

  /// Pseudo-DDL statements realizing the recommendation.
  std::vector<std::string> ddl;
  /// Per-table reasoning.
  std::vector<std::string> rationale;

  /// The workload profile this recommendation was solved for (normalized
  /// snapshot of the statistics that drove the search). The online
  /// adaptation loop compares live statistics against it to decide when a
  /// re-search is due (src/online/drift.h).
  WorkloadProfile solved_for;
  /// Recorder epoch the online mode snapshotted (0 for offline mode).
  uint64_t solved_epoch = 0;
  /// The weighted workload the recommendation was costed on — the
  /// migration planner re-uses it to order steps by workload-cost gain.
  std::vector<WeightedQuery> solved_workload;

  /// Human-readable report: costs, per-table DDL + rationale, encoding
  /// footprints and budget attribution.
  std::string Summary() const;
};

/// The end-to-end advisor tool; see the class comment at the top of this
/// header and docs/ARCHITECTURE.md §3 for the pipeline it wraps.
class StorageAdvisor {
 public:
  /// Advises `db` (not owned; must outlive the advisor) with defaults.
  explicit StorageAdvisor(Database* db) : StorageAdvisor(db, AdvisorOptions{}) {}
  StorageAdvisor(Database* db, AdvisorOptions options);
  ~StorageAdvisor();

  // --- Fig. 5, step 1: initialize the cost model -------------------------

  /// Calibrates against the bundled engine with scratch probe tables.
  CalibrationReport InitializeCostModel();
  /// Calibrates through an injected runner (tests, custom engines).
  CalibrationReport InitializeCostModel(ProbeRunner& runner);
  /// Skips calibration and installs parameters directly.
  void SetCostModelParams(CostModelParams params);
  const CostModel& cost_model() const { return *model_; }

  // --- Offline mode -------------------------------------------------------

  /// Recommendation from an expected or recorded workload. Table statistics
  /// are refreshed for every touched table that has none.
  Result<Recommendation> RecommendOffline(const std::vector<Query>& workload);
  Result<Recommendation> RecommendOffline(
      const std::vector<WeightedQuery>& workload);

  // --- Online mode ----------------------------------------------------------

  /// Attaches the extended-statistics recorder to the database.
  void StartRecording();
  void StopRecording();
  WorkloadRecorder* recorder() { return recorder_.get(); }

  /// Recommendation from the statistics and query sample recorded in the
  /// current epoch (since StartRecording()/the last epoch rollover).
  /// The epoch is consumed atomically: the recorded profile and sample are
  /// snapshotted, the recorder rolls to the next epoch, and the catalog
  /// statistics of every touched table are refreshed before the search — a
  /// re-search never mixes the workload profile of one epoch with the data
  /// statistics of another. FailedPrecondition when not recording or when
  /// the current epoch is empty.
  Result<Recommendation> RecommendOnline();

  // --- Online adaptation (src/online/) --------------------------------------

  /// Starts the epoch-driven adaptation loop: attaches the recorder (as
  /// StartRecording) if needed and creates the AdaptationController that
  /// re-runs the joint search when recorded statistics drift from the
  /// profile the applied design was solved for, migrating incrementally.
  /// Call controller->Tick() per epoch (or controller->Start() for the
  /// background thread). Replaces any previous controller.
  AdaptationController& StartAutoAdapt(const AdaptationOptions& options);
  AdaptationController& StartAutoAdapt();
  /// The active controller; nullptr before StartAutoAdapt/after Stop.
  AdaptationController* auto_adapt() { return controller_.get(); }
  /// Destroys the controller (joining its background thread if running);
  /// recording continues.
  void StopAutoAdapt();

  /// The profile the currently *applied* design was solved for: stamped by
  /// Apply() from the applied recommendation, re-stamped by the controller
  /// when a re-search validates the design for a new profile. Empty until
  /// a recommendation with a profile is applied.
  const std::optional<WorkloadProfile>& solved_profile() const {
    return solved_profile_;
  }
  void set_solved_profile(WorkloadProfile profile) {
    solved_profile_ = std::move(profile);
  }

  // --- Applying recommendations -------------------------------------------

  /// Executes the layout changes against the database (the "ask the storage
  /// advisor to apply the recommended storage layout" path in §4).
  Status Apply(const Recommendation& recommendation);

 private:
  Result<Recommendation> Recommend(
      const std::vector<WeightedQuery>& workload,
      const WorkloadStatistics& stats);
  /// Statistics for every touched table: with `refresh` false only tables
  /// that were never analyzed are profiled (offline mode); with true every
  /// touched table is re-analyzed (memoized on data_version — the online
  /// mode's per-epoch refresh).
  Status EnsureStatistics(const std::vector<WeightedQuery>& workload,
                          bool refresh = false);

  Database* db_;
  AdvisorOptions options_;
  std::unique_ptr<CostModel> model_;
  std::unique_ptr<WorkloadRecorder> recorder_;
  std::unique_ptr<AdaptationController> controller_;
  std::optional<WorkloadProfile> solved_profile_;
  bool recording_ = false;
};

}  // namespace hsdb

#endif  // HSDB_CORE_ADVISOR_H_
