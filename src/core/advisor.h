// StorageAdvisor: the tool the paper contributes. Wraps the full
// recommendation process of Fig. 5:
//
//   initialize cost model (calibration probes)
//     -> offline mode: initial recommendation from an expected/recorded
//        workload
//     -> online mode: record extended statistics while the system runs,
//        periodically recompute adaptation recommendations
//
// Recommendations report the estimated costs of RS-only / CS-only /
// table-level / partitioned layouts, carry executable layout changes and
// pseudo-DDL for the administrator, and can be applied to the database.
#ifndef HSDB_CORE_ADVISOR_H_
#define HSDB_CORE_ADVISOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/encoding_search.h"
#include "core/partition_advisor.h"
#include "core/probe_runner.h"
#include "core/table_advisor.h"
#include "workload/recorder.h"

namespace hsdb {

struct AdvisorOptions {
  /// Consider horizontal/vertical partitioning (§3.2); with false the
  /// advisor stops at table-level recommendations (§3.1).
  bool enable_partitioning = true;
  /// Probe-suite configuration for InitializeCostModel (reference rows,
  /// sweep points, whether to run the per-codec microprobes).
  CalibrationOptions calibration;
  /// Search strategy of the table-level RS/CS assignment (exhaustive vs
  /// hill climbing, join handling).
  TableAdvisor::Options table_options;
  /// Horizontal/vertical split enumeration limits and validation.
  PartitionAdvisor::Options partition_options;
  /// Per-column encoding search over the chosen layouts: candidates, exact
  /// fallback threshold and — the user knob — encoding.memory_budget_bytes,
  /// the total memory budget for encoded column-store segments.
  /// Recommendations under a budget emit a WITH (MEMORY_BUDGET ...) DDL
  /// clause and cost-derived ENCODING (...) assignments.
  EncodingSearchOptions encoding;
  /// Joint layout+encoding search (default): layout candidates and codec
  /// assignments are explored together under the one shared memory budget,
  /// so a binding budget can flip a table's layout (row store, narrower
  /// hybrid split) instead of only downgrading codecs. With false the
  /// advisor restores the staged pipeline: TableAdvisor/PartitionAdvisor
  /// freeze the layouts, then the encoding search runs on them.
  bool joint_budget_search = true;
  /// Raw queries retained by the online recorder (reservoir sample).
  size_t recorder_sample = 4096;
};

struct Recommendation {
  /// Chosen layout per table (with locality context for the estimator;
  /// LayoutContext::encodings carries the cost-derived per-column codecs
  /// the encoding search selected).
  std::map<std::string, LayoutContext> layouts;
  /// Table-level assignment (before partitioning), for comparison.
  std::map<std::string, StoreType> table_level_assignment;

  /// Estimated workload cost (ms) of the recommended design and of the
  /// comparison baselines the paper reports: everything in the row store,
  /// everything in the column store, and the table-level (unpartitioned)
  /// assignment.
  double estimated_cost_ms = 0.0;
  double rs_only_cost_ms = 0.0;
  double cs_only_cost_ms = 0.0;
  double table_level_cost_ms = 0.0;

  /// Encoding-search outcome: estimated footprint of the chosen encodings,
  /// the workload cost the picker's heuristic assignment would have had,
  /// the budget (echoed from AdvisorOptions) and whether it was met.
  double encoding_footprint_bytes = 0.0;
  double encoding_picker_cost_ms = 0.0;
  std::optional<double> memory_budget_bytes;
  bool encoding_budget_feasible = true;

  /// Joint-search reporting: what the staged layout-then-encoding pipeline
  /// would have cost (the joint result never exceeds it when the staged
  /// design is budget-feasible; equal to estimated_cost_ms when the joint
  /// mode is disabled), and the per-table encoded footprint the chosen
  /// design charges against the budget (budget attribution).
  double sequential_cost_ms = 0.0;
  std::map<std::string, double> encoding_footprint_by_table;

  /// Pseudo-DDL statements realizing the recommendation.
  std::vector<std::string> ddl;
  /// Per-table reasoning.
  std::vector<std::string> rationale;

  /// Human-readable report: costs, per-table DDL + rationale, encoding
  /// footprints and budget attribution.
  std::string Summary() const;
};

/// The end-to-end advisor tool; see the class comment at the top of this
/// header and docs/ARCHITECTURE.md §3 for the pipeline it wraps.
class StorageAdvisor {
 public:
  /// Advises `db` (not owned; must outlive the advisor) with defaults.
  explicit StorageAdvisor(Database* db) : StorageAdvisor(db, AdvisorOptions{}) {}
  StorageAdvisor(Database* db, AdvisorOptions options);
  ~StorageAdvisor();

  // --- Fig. 5, step 1: initialize the cost model -------------------------

  /// Calibrates against the bundled engine with scratch probe tables.
  CalibrationReport InitializeCostModel();
  /// Calibrates through an injected runner (tests, custom engines).
  CalibrationReport InitializeCostModel(ProbeRunner& runner);
  /// Skips calibration and installs parameters directly.
  void SetCostModelParams(CostModelParams params);
  const CostModel& cost_model() const { return *model_; }

  // --- Offline mode -------------------------------------------------------

  /// Recommendation from an expected or recorded workload. Table statistics
  /// are refreshed for every touched table that has none.
  Result<Recommendation> RecommendOffline(const std::vector<Query>& workload);
  Result<Recommendation> RecommendOffline(
      const std::vector<WeightedQuery>& workload);

  // --- Online mode ----------------------------------------------------------

  /// Attaches the extended-statistics recorder to the database.
  void StartRecording();
  void StopRecording();
  WorkloadRecorder* recorder() { return recorder_.get(); }

  /// Recommendation from the statistics and query sample recorded since
  /// StartRecording()/last reset. FailedPrecondition when not recording or
  /// nothing was recorded.
  Result<Recommendation> RecommendOnline();

  // --- Applying recommendations -------------------------------------------

  /// Executes the layout changes against the database (the "ask the storage
  /// advisor to apply the recommended storage layout" path in §4).
  Status Apply(const Recommendation& recommendation);

 private:
  Result<Recommendation> Recommend(
      const std::vector<WeightedQuery>& workload,
      const WorkloadStatistics& stats);
  Status EnsureStatistics(const std::vector<WeightedQuery>& workload);

  Database* db_;
  AdvisorOptions options_;
  std::unique_ptr<CostModel> model_;
  std::unique_ptr<WorkloadRecorder> recorder_;
  bool recording_ = false;
};

}  // namespace hsdb

#endif  // HSDB_CORE_ADVISOR_H_
