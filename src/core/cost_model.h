// The storage advisor's cost model (paper §3):
//
//   Costs = BaseCosts · QueryAdjustment · DataAdjustment
//
// All base costs and adjustment functions are store-specific; adjustment
// functions are constants, linear functions or piecewise-linear functions of
// one characteristic each (the paper's independence assumption). Parameters
// are produced either analytically (Default) or by calibration probes run
// against the engine (core/calibration.h, the paper's "initialize cost
// model" step).
#ifndef HSDB_CORE_COST_MODEL_H_
#define HSDB_CORE_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/regression.h"
#include "common/types.h"
#include "executor/query.h"
#include "storage/compression/encoding.h"
#include "storage/store_type.h"

namespace hsdb {

/// Per-store cost-model parameters. Base costs are in milliseconds at the
/// reference configuration; every adjustment function returns a multiplier
/// and is normalized to ~1 at its calibration reference point.
struct StoreCostParams {
  // Aggregation: (Σ_i base_agg[fn_i]·c_data_type[type_i]) · c_group_by? ·
  //              c_filter? · f_rows_agg(rows) · f_compression_agg(rate).
  double base_agg[kNumAggFns] = {1, 1, 1, 1, 0.1};
  double c_data_type[kNumDataTypes] = {1, 1, 1, 1, 1};
  double c_group_by = 4.0;
  double c_agg_filter = 1.3;
  LinearFn f_rows_agg{0.0, 1e-6};  // multiplier per row
  PiecewiseLinearFn f_compression_agg = PiecewiseLinearFn::Constant(1.0);

  // Point/range select: base_select · f_selected_columns(k) ·
  //                     f_selectivity(sel) · f_rows_select(rows).
  double base_select = 1.0;
  /// Primary-key point lookups bypass the scan machinery entirely (hash
  /// index in both stores) and are costed separately.
  double base_point_select = 0.005;
  LinearFn f_selected_columns{1.0, 0.0};
  LinearFn f_selectivity_indexed{0.1, 10.0};
  LinearFn f_selectivity_scan{1.0, 3.0};
  LinearFn f_rows_select{0.0, 1e-6};

  // Insert: base_insert · f_rows_insert(rows)   (uniqueness verification).
  double base_insert = 0.005;
  LinearFn f_rows_insert{1.0, 0.0};

  // Update: base_update · f_affected_columns(k) · f_affected_rows(m) ·
  //         f_rows_update(rows).
  double base_update = 0.005;
  LinearFn f_affected_columns{1.0, 0.0};
  LinearFn f_affected_rows{0.0, 1.0};
  LinearFn f_rows_update{1.0, 0.0};

  // Join contributions (see CostModel::JoinAggregationCost).
  LinearFn f_rows_probe{0.0, 1e-6};
  LinearFn f_rows_build{0.5, 5e-4};

  // Compressed-scan decode terms (column store): relative sequential-scan
  // cost per column encoding, normalized to the dictionary codec = 1.
  // Calibrated by the per-codec decode microprobes
  // (storage/compression/encoding_calibration.h); identity for the row
  // store.
  double c_encoding_scan[kNumEncodings] = {1.0, 1.0, 1.0, 1.0};

  // Delta-merge re-encoding terms (column store): relative cost of
  // re-encoding one column segment under each codec at merge time,
  // normalized to the dictionary codec = 1 (calibrated by the per-codec
  // encode microprobes), and the share of the amortized insert cost that
  // merge re-encoding accounts for. Identity / zero for the row store,
  // which has no delta merges.
  double c_encoding_reencode[kNumEncodings] = {1.0, 1.0, 1.0, 1.0};
  double c_merge_share = 0.0;

  // Morsel-parallel scan terms. Scan-shaped costs (aggregation, non-indexed
  // selection) at degree of parallelism d are divided by the speedup
  //   S(d) = 1 + c_parallel_core * (d - 1)
  // — c_parallel_core is the marginal scan bandwidth each extra core
  // contributes relative to the first (1 = perfect scaling; memory-bandwidth
  // saturation keeps it below 1) — and charged c_parallel_merge_ms of
  // coordinator-side merge overhead per scan. Calibrated by the parallel
  // scan probe (MeasureParallelScan); identity at d = 1.
  double c_parallel_core = 0.7;
  double c_parallel_merge_ms = 0.01;

  // Shared-scan batch term (v6). The serving front-end's BatchExecutor
  // co-runs w compatible queries on one decode pass, so each query pays
  //   cost / BatchSpeedup(w),  BatchSpeedup(w) = w / (1 + share * (w - 1))
  // — c_batch_scan_share is the per-query share of scan-shaped work the
  // shared pass can NOT amortize (bitmap fan-out, per-query
  // materialization): 0 = decode dominates (ideal w-fold sharing), 1 = no
  // benefit. Applied to scan-shaped costs only, like the parallel terms;
  // the column store amortizes more (the decode pass is the expensive
  // part), the row store less (the tuple walk is shared but cheap to begin
  // with).
  double c_batch_scan_share = 0.35;
};

/// Full parameter set: one StoreCostParams per store plus the store-
/// combination base costs for joins and the vertical-stitch penalty.
struct CostModelParams {
  StoreCostParams store[kNumStoreTypes];
  /// base_join[fact store][dimension store]: multiplier on the join part.
  double base_join[kNumStoreTypes][kNumStoreTypes] = {{1.0, 1.1},
                                                      {0.9, 1.0}};
  /// Cost (ms) of stitching vertically partitioned pieces, per scanned row
  /// (charged when a query spans both pieces of a vertical split).
  LinearFn f_stitch{0.0, 2e-3};
  /// Constant overhead (ms) for combining horizontal partition partials.
  double c_union = 0.05;

  const StoreCostParams& of(StoreType s) const {
    return store[static_cast<int>(s)];
  }
  StoreCostParams& of(StoreType s) { return store[static_cast<int>(s)]; }

  /// Analytic defaults roughly shaped like the bundled engine; calibration
  /// replaces them with measured parameters.
  static CostModelParams Default();

  std::string ToString() const;

  /// Round-trippable text serialization, so a calibrated model can be
  /// persisted and reused across processes (the advisor only re-initializes
  /// the cost model when hardware/system settings change, Fig. 5).
  std::string Serialize() const;
  static Result<CostModelParams> Deserialize(const std::string& text);
};

/// One aggregate's characteristics: function + data type of its column.
struct AggSpec {
  AggFn fn;
  DataType type;
};

/// Evaluates the paper's cost formulas on query/data characteristics.
class CostModel {
 public:
  CostModel() : params_(CostModelParams::Default()) {}
  explicit CostModel(CostModelParams params) : params_(std::move(params)) {}

  const CostModelParams& params() const { return params_; }

  /// Degree of parallelism the engine runs eligible scans at (the advisor
  /// mirrors Database::num_threads() here). Scan-shaped costs are divided
  /// by the per-store parallel speedup; point lookups, joins and writes are
  /// serial in the engine and stay unscaled. 1 (the default) disables the
  /// adjustment.
  void set_dop(int dop) { dop_ = dop < 1 ? 1 : dop; }
  int dop() const { return dop_; }

  /// Expected number of compatible queries co-running per shared-scan batch
  /// when a serving front-end feeds the engine through the BatchExecutor
  /// (the advisor mirrors AdvisorOptions::batch_width, which deployments
  /// set from their measured hsdb_server_batch_width). Scan-shaped costs
  /// are divided by the per-store batch speedup — the amortized per-query
  /// cost a co-running client actually pays. 1 (the default) disables the
  /// adjustment; point lookups, joins and writes are never shared and stay
  /// unscaled.
  void set_batch_width(int width) { batch_width_ = width < 1 ? 1 : width; }
  int batch_width() const { return batch_width_; }

  /// Single-table aggregation (paper §3.1 "Aggregation Queries").
  /// A predicate splits the cost into a filter pass over all rows
  /// (c_agg_filter) plus the aggregation work over the selected fraction —
  /// an extension of the paper's constant-only filter adjustment that keeps
  /// the estimate store-rank-correct when filters are selective.
  /// `encoding_scan` is the table's average per-encoding scan multiplier
  /// (EncodingScanMultiplier averaged over the scanned columns); it adjusts
  /// column-store scans only.
  double AggregationCost(StoreType store, const std::vector<AggSpec>& aggs,
                         bool grouped, bool filtered, double rows,
                         double compression_rate, double selectivity = 1.0,
                         double encoding_scan = 1.0) const;

  /// Star-join aggregation: fact-side aggregation adjusted per joined
  /// dimension with the store-combination base costs (§3.1 "Join Queries").
  struct JoinSide {
    StoreType store;
    double rows;
    double compression_rate;
  };
  double JoinAggregationCost(StoreType fact_store,
                             const std::vector<AggSpec>& aggs, bool grouped,
                             bool filtered, double fact_rows,
                             double fact_compression,
                             const std::vector<JoinSide>& dims,
                             double selectivity = 1.0,
                             double encoding_scan = 1.0) const;

  /// Point/range selection (§3.1 "Point and Range Queries").
  double SelectCost(StoreType store, size_t selected_columns,
                    double selectivity, bool indexed, double rows,
                    double encoding_scan = 1.0) const;

  /// Relative scan cost of a column-store column under `encoding`
  /// (dictionary = 1); always 1 for the row store.
  double EncodingScanMultiplier(StoreType store, Encoding encoding) const;

  /// Relative delta-merge re-encode cost of a column-store column under
  /// `encoding` (dictionary = 1); always 1 for the row store.
  double EncodingReencodeMultiplier(StoreType store, Encoding encoding) const;

  /// Primary-key point lookup: hash access + k-column tuple reconstruction.
  double PointSelectCost(StoreType store, size_t selected_columns) const;

  /// Insert (§3.1 "Inserts and Updates"). `encoding_reencode` is the
  /// table's average per-codec re-encode multiplier (delta-merge term); it
  /// scales the merge share of the column store's amortized insert cost and
  /// is ignored by the row store.
  double InsertCost(StoreType store, double rows,
                    double encoding_reencode = 1.0) const;

  /// Update (§3.1 "Inserts and Updates").
  double UpdateCost(StoreType store, size_t affected_columns,
                    double affected_rows, double rows) const;

  /// Delete is costed like a full-width update of one row batch.
  double DeleteCost(StoreType store, double affected_rows, double rows) const;

  /// Vertical-stitch penalty for queries spanning both pieces of a vertical
  /// split, and the union overhead for horizontal partitions.
  double StitchCost(double rows) const { return params_.f_stitch(rows); }
  double UnionOverhead() const { return params_.c_union; }

 private:
  /// Parallel speedup S(d) for scan-shaped work under `sp` (1 at dop 1).
  double ParallelSpeedup(const StoreCostParams& sp) const;
  /// Shared-scan speedup B(w) for scan-shaped work under `sp` (1 at batch
  /// width 1).
  double BatchSpeedup(const StoreCostParams& sp) const;

  CostModelParams params_;
  int dop_ = 1;
  int batch_width_ = 1;
};

}  // namespace hsdb

#endif  // HSDB_CORE_COST_MODEL_H_
