#include "core/table_advisor.h"

#include <algorithm>

#include "common/random.h"

namespace hsdb {

namespace {

/// Per-query cost cache: a query involving tables {t1..tk} has 2^k costs,
/// one per store combination of the involved tables.
struct QueryComboCosts {
  double weight = 1.0;
  std::vector<size_t> tables;  // indices into the global table list
  std::vector<double> costs;   // indexed by local store bitmask (bit i ->
                               // tables[i] in the column store)
};

}  // namespace

TableAdvisorResult TableAdvisor::Recommend(
    const std::vector<WeightedQuery>& workload) const {
  TableAdvisorResult result;

  // Collect the tables the workload touches, in deterministic order.
  std::vector<std::string> names;
  std::map<std::string, size_t> index_of;
  for (const WeightedQuery& wq : workload) {
    for (const std::string& name : TablesOf(wq.query)) {
      if (index_of.emplace(name, names.size()).second) {
        names.push_back(name);
      }
    }
  }
  const size_t n = names.size();
  if (n == 0) return result;

  // Precompute per-query combination costs.
  std::vector<QueryComboCosts> cache;
  cache.reserve(workload.size());
  std::vector<StoreType> scratch(n, StoreType::kRow);
  for (const WeightedQuery& wq : workload) {
    QueryComboCosts entry;
    entry.weight = wq.weight;
    for (const std::string& name : TablesOf(wq.query)) {
      entry.tables.push_back(index_of.at(name));
    }
    const size_t k = entry.tables.size();
    entry.costs.resize(size_t{1} << k);
    for (size_t mask = 0; mask < entry.costs.size(); ++mask) {
      for (size_t b = 0; b < k; ++b) {
        scratch[entry.tables[b]] = (mask >> b) & 1 ? StoreType::kColumn
                                                   : StoreType::kRow;
      }
      entry.costs[mask] = estimator_.QueryCost(
          wq.query, [&](const std::string& name) {
            auto it = index_of.find(name);
            StoreType s = it == index_of.end() ? StoreType::kRow
                                               : scratch[it->second];
            return LayoutContext::SingleStore(s);
          });
    }
    cache.push_back(std::move(entry));
  }

  auto assignment_cost = [&](const std::vector<StoreType>& stores) {
    double total = 0.0;
    for (const QueryComboCosts& entry : cache) {
      size_t mask = 0;
      for (size_t b = 0; b < entry.tables.size(); ++b) {
        if (stores[entry.tables[b]] == StoreType::kColumn) {
          mask |= size_t{1} << b;
        }
      }
      total += entry.weight * entry.costs[mask];
    }
    return total;
  };

  std::vector<StoreType> all_rs(n, StoreType::kRow);
  std::vector<StoreType> all_cs(n, StoreType::kColumn);
  result.rs_only_cost_ms = assignment_cost(all_rs);
  result.cs_only_cost_ms = assignment_cost(all_cs);

  std::vector<StoreType> best;
  double best_cost = 0.0;

  if (n <= options_.exhaustive_limit) {
    result.exhaustive = true;
    best = all_rs;
    best_cost = result.rs_only_cost_ms;
    for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
      std::vector<StoreType> stores(n);
      for (size_t t = 0; t < n; ++t) {
        stores[t] = (mask >> t) & 1 ? StoreType::kColumn : StoreType::kRow;
      }
      double cost = assignment_cost(stores);
      ++result.evaluated_assignments;
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(stores);
      }
    }
  } else {
    result.exhaustive = false;
    // Hill climbing with restarts: flip the single table that helps most.
    Rng rng(options_.seed);
    auto climb = [&](std::vector<StoreType> stores) {
      double cost = assignment_cost(stores);
      bool improved = true;
      while (improved) {
        improved = false;
        for (size_t t = 0; t < n; ++t) {
          stores[t] = stores[t] == StoreType::kRow ? StoreType::kColumn
                                                   : StoreType::kRow;
          double flipped = assignment_cost(stores);
          ++result.evaluated_assignments;
          if (flipped + 1e-12 < cost) {
            cost = flipped;
            improved = true;
          } else {
            stores[t] = stores[t] == StoreType::kRow ? StoreType::kColumn
                                                     : StoreType::kRow;
          }
        }
      }
      if (best.empty() || cost < best_cost) {
        best_cost = cost;
        best = stores;
      }
    };
    climb(all_rs);
    climb(all_cs);
    for (int r = 0; r < options_.hill_climb_restarts; ++r) {
      std::vector<StoreType> stores(n);
      for (size_t t = 0; t < n; ++t) {
        stores[t] = rng.Chance(0.5) ? StoreType::kRow : StoreType::kColumn;
      }
      climb(std::move(stores));
    }
  }

  result.estimated_cost_ms = best_cost;
  for (size_t t = 0; t < n; ++t) {
    result.assignment.emplace(names[t], best[t]);
  }
  return result;
}

}  // namespace hsdb
