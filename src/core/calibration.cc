#include "core/calibration.h"

#include <array>
#include <cmath>
#include <sstream>

#include "common/macros.h"
#include "storage/compression/encoding_calibration.h"

namespace hsdb {

namespace {

/// Rescales a fitted raw function into a multiplier that is 1 at `x_ref`.
LinearFn NormalizeAt(const LinearFn& fn, double x_ref) {
  double scale = fn(x_ref);
  if (scale <= 0.0) return fn;
  return LinearFn{fn.intercept / scale, fn.slope / scale};
}

PiecewiseLinearFn NormalizePwlAt(const PiecewiseLinearFn& fn, double x_ref) {
  double scale = fn(x_ref);
  if (scale <= 0.0) return fn;
  std::vector<double> ys = fn.ys();
  for (double& y : ys) y /= scale;
  return PiecewiseLinearFn::FromKnots(fn.xs(), std::move(ys));
}

}  // namespace

CalibrationReport Calibrate(ProbeRunner& runner,
                            const CalibrationOptions& opt) {
  CalibrationReport report;
  CostModelParams& params = report.params;
  std::ostringstream log;
  std::vector<double> r2s;
  auto fit = [&](const std::vector<double>& x, const std::vector<double>& y,
                 const char* what) {
    LinearFit f = FitLinear(x, y);
    r2s.push_back(f.r_squared);
    log << "  fit " << what << ": " << f.fn.ToString()
        << " (r2=" << f.r_squared << ")\n";
    return f.fn;
  };

  const size_t ref_rows = opt.reference_rows;
  const uint64_t ref_distinct = opt.reference_distinct;

  for (StoreType store : {StoreType::kRow, StoreType::kColumn}) {
    StoreCostParams& sp = params.of(store);
    log << "store " << StoreTypeName(store) << ":\n";

    // ---- Aggregation ----------------------------------------------------
    ProbeResult ref = runner.MeasureAggregation(
        store, AggFn::kSum, DataType::kDouble, false, false, ref_rows,
        ref_distinct);
    const double base_sum = std::max(ref.ms, 1e-6);
    const double ref_rate = ref.compression_rate;
    for (AggFn fn : {AggFn::kSum, AggFn::kAvg, AggFn::kMin, AggFn::kMax,
                     AggFn::kCount}) {
      sp.base_agg[static_cast<int>(fn)] =
          fn == AggFn::kSum
              ? base_sum
              : runner.MeasureAggregation(store, fn, DataType::kDouble,
                                          false, false, ref_rows,
                                          ref_distinct)
                    .ms;
    }
    // Data-type constants relative to DOUBLE.
    sp.c_data_type[static_cast<int>(DataType::kDouble)] = 1.0;
    sp.c_data_type[static_cast<int>(DataType::kVarchar)] = 1.0;
    for (DataType type :
         {DataType::kInt32, DataType::kInt64, DataType::kDate}) {
      sp.c_data_type[static_cast<int>(type)] =
          runner.MeasureAggregation(store, AggFn::kSum, type, false, false,
                                    ref_rows, ref_distinct)
              .ms /
          base_sum;
    }
    sp.c_group_by = runner.MeasureAggregation(store, AggFn::kSum,
                                              DataType::kDouble, true, false,
                                              ref_rows, ref_distinct)
                        .ms /
                    base_sum;
    // The filtered probe measures (filter pass + aggregation over the
    // selected fraction); subtract the latter to isolate the filter-pass
    // constant (cf. CostModel::AggregationCost).
    sp.c_agg_filter = std::max(
        0.05, runner.MeasureAggregation(store, AggFn::kSum,
                                        DataType::kDouble, false, true,
                                        ref_rows, ref_distinct)
                      .ms /
                      base_sum -
                  kAggFilterProbeSelectivity);

    // f_rows: sweep the table size.
    {
      std::vector<double> xs, ys;
      for (size_t rows : opt.row_points) {
        xs.push_back(static_cast<double>(rows));
        ys.push_back(runner.MeasureAggregation(store, AggFn::kSum,
                                               DataType::kDouble, false,
                                               false, rows, ref_distinct)
                         .ms /
                     base_sum);
      }
      sp.f_rows_agg = NormalizeAt(
          fit(xs, ys, "f_rows_agg"), static_cast<double>(ref_rows));
    }

    // f_compression (column store only): sweep distinct counts, knot on the
    // *observed* compression rate.
    if (store == StoreType::kColumn) {
      std::vector<double> xs, ys;
      for (uint64_t distinct : opt.distinct_points) {
        ProbeResult r = runner.MeasureAggregation(store, AggFn::kSum,
                                                  DataType::kDouble, false,
                                                  false, ref_rows, distinct);
        xs.push_back(r.compression_rate);
        ys.push_back(r.ms / base_sum);
      }
      sp.f_compression_agg =
          NormalizePwlAt(PiecewiseLinearFn::FromKnots(xs, ys), ref_rate);
      log << "  f_compression_agg: " << sp.f_compression_agg.ToString()
          << "\n";
    } else {
      sp.f_compression_agg = PiecewiseLinearFn::Constant(1.0);
    }

    // ---- Select ----------------------------------------------------------
    const double ref_sel = opt.reference_selectivity;
    ProbeResult sel_ref =
        runner.MeasureSelect(store, 1, ref_sel, true, ref_rows);
    sp.base_select = std::max(sel_ref.ms, 1e-6);
    sp.base_point_select =
        std::max(runner.MeasurePointSelect(store, ref_rows).ms, 1e-9);
    {
      std::vector<double> xs, ys;
      for (size_t cols : opt.column_points) {
        xs.push_back(static_cast<double>(cols));
        ys.push_back(
            runner.MeasureSelect(store, cols, ref_sel, true, ref_rows).ms /
            sp.base_select);
      }
      sp.f_selected_columns =
          NormalizeAt(fit(xs, ys, "f_selected_columns"), 1.0);
    }
    {
      std::vector<double> xs, ys_idx, ys_scan;
      for (double sel : opt.selectivity_points) {
        xs.push_back(sel);
        ys_idx.push_back(
            runner.MeasureSelect(store, 1, sel, true, ref_rows).ms /
            sp.base_select);
        ys_scan.push_back(
            runner.MeasureSelect(store, 1, sel, false, ref_rows).ms /
            sp.base_select);
      }
      sp.f_selectivity_indexed =
          NormalizeAt(fit(xs, ys_idx, "f_selectivity_indexed"), ref_sel);
      sp.f_selectivity_scan =
          NormalizeAt(fit(xs, ys_scan, "f_selectivity_scan"), ref_sel);
    }
    {
      std::vector<double> xs, ys;
      for (size_t rows : opt.row_points) {
        xs.push_back(static_cast<double>(rows));
        ys.push_back(runner.MeasureSelect(store, 1, ref_sel, true, rows).ms /
                     sp.base_select);
      }
      sp.f_rows_select = NormalizeAt(
          fit(xs, ys, "f_rows_select"), static_cast<double>(ref_rows));
    }

    // ---- Insert ----------------------------------------------------------
    sp.base_insert = std::max(runner.MeasureInsert(store, ref_rows).ms, 1e-9);
    {
      std::vector<double> xs, ys;
      for (size_t rows : opt.row_points) {
        xs.push_back(static_cast<double>(rows));
        ys.push_back(runner.MeasureInsert(store, rows).ms / sp.base_insert);
      }
      sp.f_rows_insert = NormalizeAt(
          fit(xs, ys, "f_rows_insert"), static_cast<double>(ref_rows));
    }

    // ---- Update ----------------------------------------------------------
    sp.base_update =
        std::max(runner.MeasureUpdate(store, 1, 1, ref_rows).ms, 1e-9);
    {
      std::vector<double> xs, ys;
      for (size_t cols : opt.column_points) {
        xs.push_back(static_cast<double>(cols));
        ys.push_back(runner.MeasureUpdate(store, cols, 1, ref_rows).ms /
                     sp.base_update);
      }
      sp.f_affected_columns =
          NormalizeAt(fit(xs, ys, "f_affected_columns"), 1.0);
    }
    {
      std::vector<double> xs, ys;
      for (size_t m : opt.affected_rows_points) {
        xs.push_back(static_cast<double>(m));
        ys.push_back(runner.MeasureUpdate(store, 1, m, ref_rows).ms /
                     sp.base_update);
      }
      // f_affected_rows is used un-normalized (multiplier per affected row).
      LinearFn f = fit(xs, ys, "f_affected_rows");
      sp.f_affected_rows = NormalizeAt(f, 1.0);
    }
    {
      std::vector<double> xs, ys;
      for (size_t rows : opt.row_points) {
        xs.push_back(static_cast<double>(rows));
        ys.push_back(runner.MeasureUpdate(store, 1, 1, rows).ms /
                     sp.base_update);
      }
      sp.f_rows_update = NormalizeAt(
          fit(xs, ys, "f_rows_update"), static_cast<double>(ref_rows));
    }
  }

  // ---- Joins (store combinations) ---------------------------------------
  {
    double ref_join[kNumStoreTypes][kNumStoreTypes];
    for (StoreType f : {StoreType::kRow, StoreType::kColumn}) {
      for (StoreType d : {StoreType::kRow, StoreType::kColumn}) {
        ref_join[static_cast<int>(f)][static_cast<int>(d)] =
            runner.MeasureJoin(f, d, ref_rows, opt.reference_dim_rows).ms;
      }
    }
    for (StoreType f : {StoreType::kRow, StoreType::kColumn}) {
      StoreCostParams& fp = params.of(f);
      double base_sum = fp.base_agg[static_cast<int>(AggFn::kSum)];
      // Probe-side scaling: fact rows (probe) and dim rows (build).
      std::vector<double> xs, ys;
      for (size_t rows : opt.row_points) {
        xs.push_back(static_cast<double>(rows));
        ys.push_back(
            runner.MeasureJoin(f, StoreType::kRow, rows,
                               opt.reference_dim_rows)
                .ms);
      }
      fp.f_rows_probe = NormalizeAt(
          fit(xs, ys, "f_rows_probe"), static_cast<double>(ref_rows));
      xs.clear();
      ys.clear();
      for (size_t dim_rows : opt.dim_row_points) {
        xs.push_back(static_cast<double>(dim_rows));
        ys.push_back(
            runner.MeasureJoin(StoreType::kRow, f, ref_rows, dim_rows).ms);
      }
      fp.f_rows_build = NormalizeAt(
          fit(xs, ys, "f_rows_build"),
          static_cast<double>(opt.reference_dim_rows));
      for (StoreType d : {StoreType::kRow, StoreType::kColumn}) {
        params.base_join[static_cast<int>(f)][static_cast<int>(d)] =
            ref_join[static_cast<int>(f)][static_cast<int>(d)] /
            std::max(base_sum, 1e-9);
      }
    }
  }

  // ---- Vertical stitch penalty -------------------------------------------
  {
    std::vector<double> xs, ys;
    for (size_t rows : opt.row_points) {
      xs.push_back(static_cast<double>(rows));
      ys.push_back(std::max(0.0, runner.MeasureStitch(rows).ms));
    }
    params.f_stitch = fit(xs, ys, "f_stitch");  // absolute ms, un-normalized
    if (params.f_stitch.slope < 0.0) {
      params.f_stitch = LinearFn::Constant(
          std::max(0.0, params.f_stitch(static_cast<double>(ref_rows))));
    }
  }

  // ---- Per-codec decode + re-encode terms --------------------------------
  if (opt.calibrate_encoding_scan) {
    std::array<double, kNumEncodings> mult =
        compression::MeasureEncodingScanMultipliers();
    StoreCostParams& cs = params.of(StoreType::kColumn);
    log << "c_encoding_scan:";
    for (int e = 0; e < kNumEncodings; ++e) {
      cs.c_encoding_scan[e] = mult[e];
      log << " " << EncodingName(static_cast<Encoding>(e)) << "=" << mult[e];
    }
    log << "\n";
    // Delta-merge re-encode throughput per codec; the merge share itself
    // stays at its analytic default (isolating it would need engine-level
    // merge probes).
    std::array<double, kNumEncodings> reenc =
        compression::MeasureEncodingReencodeMultipliers();
    log << "c_encoding_reencode:";
    for (int e = 0; e < kNumEncodings; ++e) {
      cs.c_encoding_reencode[e] = reenc[e];
      log << " " << EncodingName(static_cast<Encoding>(e)) << "="
          << reenc[e];
    }
    log << " (merge_share=" << cs.c_merge_share << ")\n";
  }

  // ---- Morsel-parallel scan terms ----------------------------------------
  if (!opt.parallel_dop_points.empty()) {
    for (StoreType s : {StoreType::kRow, StoreType::kColumn}) {
      StoreCostParams& sp = params.of(s);
      const double serial =
          runner.MeasureParallelScan(s, 1, ref_rows).ms;
      if (serial <= 0.0) continue;  // runner without a parallel probe
      // Fit speedup(d) = 1 + e*(d-1) through the measured points:
      // per-point efficiency e_d = (serial/parallel - 1) / (d - 1),
      // averaged (each probe gets equal weight).
      double e_sum = 0.0;
      int e_n = 0;
      log << "c_parallel_core[" << StoreTypeName(s) << "]:";
      for (int dop : opt.parallel_dop_points) {
        if (dop <= 1) continue;
        const double parallel = runner.MeasureParallelScan(s, dop, ref_rows).ms;
        if (parallel <= 0.0) continue;
        const double e = (serial / parallel - 1.0) / (dop - 1);
        log << " d" << dop << "=" << serial / parallel << "x";
        e_sum += e;
        ++e_n;
      }
      if (e_n > 0) {
        // A 1-core host measures ~0 marginal gain; clamp into [0, 1].
        sp.c_parallel_core =
            std::min(1.0, std::max(0.0, e_sum / e_n));
      }
      log << " -> e=" << sp.c_parallel_core << "\n";
    }
  }

  double sum_r2 = 0.0;
  for (double r2 : r2s) sum_r2 += r2;
  report.mean_r_squared = r2s.empty() ? 0.0 : sum_r2 / r2s.size();
  report.log = log.str();
  return report;
}

}  // namespace hsdb
