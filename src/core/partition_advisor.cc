#include "core/partition_advisor.h"

#include <algorithm>
#include <sstream>

namespace hsdb {

namespace {

/// OLTP attributes (paper §3.2): non-key columns used mainly and often for
/// updates rather than analyses.
std::vector<ColumnId> OltpColumns(const Schema& schema,
                                  const TableWorkloadStats& tstats) {
  std::vector<ColumnId> cols;
  for (ColumnId c = 0; c < tstats.columns.size() &&
                       c < schema.num_columns();
       ++c) {
    if (schema.IsPrimaryKeyColumn(c)) continue;
    const ColumnUsage& usage = tstats.columns[c];
    if (usage.updates > 0 && usage.OltpScore() > usage.OlapScore()) {
      cols.push_back(c);
    }
  }
  return cols;
}

bool HasOlapColumns(const Schema& schema, const TableWorkloadStats& tstats,
                    const std::vector<ColumnId>& oltp_cols) {
  for (ColumnId c = 0; c < tstats.columns.size() && c < schema.num_columns();
       ++c) {
    if (schema.IsPrimaryKeyColumn(c)) continue;
    if (std::find(oltp_cols.begin(), oltp_cols.end(), c) != oltp_cols.end()) {
      continue;
    }
    if (tstats.columns[c].OlapScore() > 0) return true;
  }
  return false;
}

}  // namespace

std::vector<LayoutCandidate> PartitionAdvisor::Candidates(
    const std::string& name, const TableWorkloadStats& tstats,
    StoreType table_level_store) const {
  std::vector<LayoutCandidate> candidates;
  const LogicalTable* table = catalog_->GetTable(name);
  const TableStatistics* stats = catalog_->GetStatistics(name);
  if (table == nullptr) return candidates;
  const Schema& schema = table->schema();

  // Baseline: the unpartitioned table-level choice.
  candidates.push_back({LayoutContext::SingleStore(table_level_store),
                        "table-level store"});

  // Partitioning requires a single-column numeric primary key (the split
  // column) and table statistics for the key domain.
  if (schema.primary_key().size() != 1 || stats == nullptr) {
    return candidates;
  }
  ColumnId pk = schema.primary_key()[0];
  if (!IsNumeric(schema.column(pk).type)) return candidates;
  const ColumnStatistics& pk_stats = stats->column(pk);
  if (!pk_stats.min.has_value() || !pk_stats.max.has_value()) {
    return candidates;
  }
  const double pk_min = *pk_stats.min;
  const double pk_max = *pk_stats.max;
  const double domain = std::max(1.0, pk_max - pk_min);

  // Vertical candidate: OLTP attributes to the row store.
  std::optional<VerticalSpec> vertical;
  std::vector<ColumnId> oltp_cols = OltpColumns(schema, tstats);
  if (!oltp_cols.empty() && HasOlapColumns(schema, tstats, oltp_cols)) {
    VerticalSpec spec{oltp_cols};
    TableLayout probe;
    probe.base_store = StoreType::kColumn;
    probe.vertical = spec;
    if (probe.Validate(schema).ok()) vertical = spec;
  }

  // Horizontal candidate A: new-data partition when inserts are frequent.
  std::optional<HorizontalSpec> horizontal;
  double hot_row_fraction = 0.0;
  double hot_access_fraction = 1.0;
  std::string horizontal_reason;
  if (tstats.InsertFraction() >= options_.insert_fraction_threshold) {
    HorizontalSpec spec;
    spec.column = pk;
    spec.boundary = pk_max + 1.0;  // future keys land in the hot piece
    spec.hot_store = StoreType::kRow;
    horizontal = spec;
    hot_row_fraction = 0.0;
    hot_access_fraction = 0.0;  // point access still targets existing rows
    horizontal_reason = "insert fraction " +
                        std::to_string(tstats.InsertFraction());
  }

  // Horizontal candidate B: hot update range -> row-store partition.
  if (!horizontal.has_value() && tstats.updates > 0) {
    auto ranges =
        tstats.update_key_histogram.DenseRanges(options_.hot_density_factor);
    const HistogramRange* best = nullptr;
    for (const HistogramRange& r : ranges) {
      if (r.mass_fraction >= options_.min_hot_mass &&
          r.width_fraction <= options_.max_hot_width &&
          (best == nullptr || r.mass_fraction > best->mass_fraction)) {
        best = &r;
      }
    }
    // Only upper key ranges are expressible (hot = keys >= boundary); the
    // range must reach the top of the *data* domain (the histogram keeps
    // headroom above pk_max for future inserts).
    if (best != nullptr && static_cast<double>(best->hi) >=
                               pk_max - domain * 0.05) {
      HorizontalSpec spec;
      spec.column = pk;
      spec.boundary = static_cast<double>(best->lo);
      spec.hot_store = StoreType::kRow;
      horizontal = spec;
      hot_row_fraction =
          std::clamp((pk_max - spec.boundary) / domain, 0.0, 1.0);
      hot_access_fraction = best->mass_fraction;
      horizontal_reason =
          "hot update range covering " +
          std::to_string(best->mass_fraction * 100.0) + "% of updates";
    }
  }

  if (horizontal.has_value()) {
    LayoutContext ctx;
    ctx.layout.base_store = StoreType::kColumn;
    ctx.layout.horizontal = horizontal;
    ctx.hot_row_fraction = hot_row_fraction;
    ctx.hot_access_fraction = hot_access_fraction;
    ctx.hot_insert_fraction = 1.0;
    candidates.push_back({ctx, "horizontal: " + horizontal_reason});
  }
  if (vertical.has_value()) {
    LayoutContext ctx;
    ctx.layout.base_store = StoreType::kColumn;
    ctx.layout.vertical = vertical;
    std::ostringstream os;
    os << "vertical: OLTP attributes [";
    for (size_t i = 0; i < vertical->row_store_columns.size(); ++i) {
      if (i > 0) os << ",";
      os << schema.column(vertical->row_store_columns[i]).name;
    }
    os << "] to the row store";
    candidates.push_back({ctx, os.str()});
  }
  if (horizontal.has_value() && vertical.has_value()) {
    LayoutContext ctx;
    ctx.layout.base_store = StoreType::kColumn;
    ctx.layout.horizontal = horizontal;
    ctx.layout.vertical = vertical;
    ctx.hot_row_fraction = hot_row_fraction;
    ctx.hot_access_fraction = hot_access_fraction;
    ctx.hot_insert_fraction = 1.0;
    candidates.push_back(
        {ctx, "combined horizontal (" + horizontal_reason + ") + vertical"});
  }
  return candidates;
}

PartitionAdvisorResult PartitionAdvisor::Recommend(
    const std::vector<WeightedQuery>& workload,
    const WorkloadStatistics& stats,
    const std::map<std::string, StoreType>& table_level) const {
  PartitionAdvisorResult result;

  // Start from the table-level assignment for every involved table.
  for (const auto& [name, store] : table_level) {
    result.layouts.emplace(name, LayoutContext::SingleStore(store));
  }
  auto provider = [&](const std::string& name) {
    auto it = result.layouts.find(name);
    return it == result.layouts.end()
               ? LayoutContext::SingleStore(StoreType::kRow)
               : it->second;
  };

  // Improve table by table (the candidates of one table do not change the
  // heuristics of another; cost coupling through joins uses the current
  // choice of the partner tables).
  for (const auto& [name, tstats] : stats.tables()) {
    auto tl = table_level.find(name);
    StoreType base = tl == table_level.end() ? StoreType::kRow : tl->second;
    auto candidates = Candidates(name, tstats, base);
    if (candidates.empty()) continue;
    double best_cost = 0.0;
    size_t best = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      result.layouts[name] = candidates[i].context;
      double cost = estimator_.WorkloadCost(workload, provider);
      if (i == 0 || cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    result.layouts[name] = candidates[best].context;
    result.estimated_cost_ms = best_cost;
    if (candidates[best].context.layout.IsPartitioned()) {
      result.rationale.push_back(name + ": " + candidates[best].reason +
                                 " (" +
                                 candidates[best].context.layout.ToString() +
                                 ")");
    } else {
      result.rationale.push_back(
          name + ": unpartitioned " +
          std::string(StoreTypeName(
              candidates[best].context.layout.base_store)));
    }
    result.candidates.emplace(name, std::move(candidates));
  }
  result.estimated_cost_ms = estimator_.WorkloadCost(workload, provider);
  return result;
}

}  // namespace hsdb
