// Workload reconstruction from extended statistics: when the online recorder
// keeps no raw query log (the cheapest recording mode, cf. the paper's §7
// discussion of statistics cost), the advisor rebuilds a representative
// weighted workload from the per-table/per-attribute counters alone.
#ifndef HSDB_CORE_WORKLOAD_MODEL_H_
#define HSDB_CORE_WORKLOAD_MODEL_H_

#include <vector>

#include "core/workload_cost.h"
#include "workload/recorder.h"

namespace hsdb {

/// Builds a weighted query-class workload equivalent (for costing purposes)
/// to the recorded stream: one insert/update/point-select/range-select class
/// per table plus one aggregation class per aggregated attribute and one
/// join class per join partner, each weighted by its observed frequency.
std::vector<WeightedQuery> BuildWorkloadModel(const WorkloadStatistics& stats,
                                              const Catalog& catalog);

}  // namespace hsdb

#endif  // HSDB_CORE_WORKLOAD_MODEL_H_
