#include "core/workload_model.h"

#include <algorithm>

namespace hsdb {

namespace {

/// Representative point predicate on the table's primary key. The concrete
/// key value only matters through its selectivity (a point), so the domain
/// midpoint is as good as any.
Predicate PointPkPredicate(const LogicalTable& table,
                           const TableStatistics* stats) {
  Predicate p;
  if (table.schema().primary_key().size() != 1) return p;
  ColumnId pk = table.schema().primary_key()[0];
  if (!IsNumeric(table.schema().column(pk).type)) return p;
  double mid = 0.0;
  if (stats != nullptr && stats->column(pk).min.has_value()) {
    mid = (*stats->column(pk).min + *stats->column(pk).max) / 2.0;
  }
  Value v;
  switch (table.schema().column(pk).type) {
    case DataType::kInt32:
      v = Value(static_cast<int32_t>(mid));
      break;
    case DataType::kInt64:
      v = Value(static_cast<int64_t>(mid));
      break;
    case DataType::kDouble:
      v = Value(mid);
      break;
    case DataType::kDate:
      v = Value(Date{static_cast<int32_t>(mid)});
      break;
    case DataType::kVarchar:
      return p;
  }
  p.push_back(PredicateTerm{{pk, 0}, ValueRange::Eq(v)});
  return p;
}

/// The `count` most frequently updated non-key columns.
std::vector<ColumnId> TopUpdatedColumns(const Schema& schema,
                                        const TableWorkloadStats& ts,
                                        size_t count) {
  std::vector<std::pair<uint64_t, ColumnId>> ranked;
  for (ColumnId c = 0; c < ts.columns.size() && c < schema.num_columns();
       ++c) {
    if (schema.IsPrimaryKeyColumn(c)) continue;
    if (ts.columns[c].updates > 0) {
      ranked.emplace_back(ts.columns[c].updates, c);
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::vector<ColumnId> cols;
  for (size_t i = 0; i < ranked.size() && i < count; ++i) {
    cols.push_back(ranked[i].second);
  }
  return cols;
}

/// Neutral value of a column's type (only the column identity matters for
/// costing; the estimator never evaluates update payloads).
Value NeutralValue(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return Value(int32_t{0});
    case DataType::kInt64:
      return Value(int64_t{0});
    case DataType::kDouble:
      return Value(0.0);
    case DataType::kDate:
      return Value(Date{0});
    case DataType::kVarchar:
      return Value("");
  }
  return Value(int32_t{0});
}

}  // namespace

std::vector<WeightedQuery> BuildWorkloadModel(const WorkloadStatistics& stats,
                                              const Catalog& catalog) {
  std::vector<WeightedQuery> model;
  for (const auto& [name, ts] : stats.tables()) {
    const LogicalTable* table = catalog.GetTable(name);
    if (table == nullptr) continue;
    const Schema& schema = table->schema();
    const TableStatistics* tstats = catalog.GetStatistics(name);

    if (ts.inserts > 0) {
      model.push_back(
          {Query(InsertQuery{name, {}}), static_cast<double>(ts.inserts)});
    }
    if (ts.updates > 0) {
      UpdateQuery u;
      u.table = name;
      u.predicate = PointPkPredicate(*table, tstats);
      size_t width = std::max<size_t>(
          1, static_cast<size_t>(ts.AvgUpdateWidth() + 0.5));
      for (ColumnId c : TopUpdatedColumns(schema, ts, width)) {
        u.set_columns.push_back(c);
        u.set_values.push_back(NeutralValue(schema.column(c).type));
      }
      if (!u.set_columns.empty()) {
        model.push_back({Query(u), static_cast<double>(ts.updates)});
      }
    }
    if (ts.point_selects > 0) {
      SelectQuery s;
      s.table = name;
      // Point queries retrieve whole tuples.
      for (ColumnId c = 0; c < schema.num_columns(); ++c) {
        s.select_columns.push_back(c);
      }
      s.predicate = PointPkPredicate(*table, tstats);
      model.push_back({Query(s), static_cast<double>(ts.point_selects)});
    }
    if (ts.range_selects > 0) {
      SelectQuery s;
      s.table = name;
      // Most-filtered column with a ~10% range as the representative shape.
      ColumnId best = 0;
      uint64_t best_uses = 0;
      for (ColumnId c = 0; c < ts.columns.size() && c < schema.num_columns();
           ++c) {
        if (ts.columns[c].filter_uses > best_uses &&
            IsNumeric(schema.column(c).type)) {
          best = c;
          best_uses = ts.columns[c].filter_uses;
        }
      }
      s.select_columns = {best};
      if (tstats != nullptr && tstats->column(best).min.has_value()) {
        double lo = *tstats->column(best).min;
        double hi = *tstats->column(best).max;
        double cut = lo + (hi - lo) * 0.1;
        s.predicate = {
            {{best, 0}, ValueRange::Between(Value(lo), Value(cut))}};
      }
      model.push_back({Query(s), static_cast<double>(ts.range_selects)});
    }

    // Aggregation classes: one per aggregated attribute, grouped when the
    // table sees grouping, joined when the table joins.
    ColumnId group_col = 0;
    uint64_t group_uses = 0;
    for (ColumnId c = 0; c < ts.columns.size() && c < schema.num_columns();
         ++c) {
      if (ts.columns[c].group_by_uses > group_uses) {
        group_col = c;
        group_uses = ts.columns[c].group_by_uses;
      }
    }
    uint64_t single_aggregations =
        ts.aggregations > ts.joins ? ts.aggregations - ts.joins : 0;
    uint64_t agg_use_total = 0;
    for (ColumnId c = 0; c < ts.columns.size() && c < schema.num_columns();
         ++c) {
      agg_use_total += ts.columns[c].aggregate_uses;
    }
    if (single_aggregations > 0 && agg_use_total > 0) {
      for (ColumnId c = 0; c < ts.columns.size() && c < schema.num_columns();
           ++c) {
        if (ts.columns[c].aggregate_uses == 0) continue;
        AggregationQuery a;
        a.tables = {name};
        a.aggregates = {{AggFn::kSum, {c, 0}}};
        if (group_uses > 0) a.group_by = {{group_col, 0}};
        double weight = static_cast<double>(single_aggregations) *
                        static_cast<double>(ts.columns[c].aggregate_uses) /
                        static_cast<double>(agg_use_total);
        model.push_back({Query(a), weight});
      }
    }
    // Join classes: this table as the (larger) fact side. Pairs are counted
    // on both tables; emitting from the larger side avoids double counting.
    for (const auto& [partner, count] : ts.join_partners) {
      const LogicalTable* dim = catalog.GetTable(partner);
      if (dim == nullptr) continue;
      if (dim->row_count() > table->row_count()) continue;
      ColumnId agg_col = 0;
      for (ColumnId c = 0; c < schema.num_columns(); ++c) {
        if (IsNumeric(schema.column(c).type) &&
            !schema.IsPrimaryKeyColumn(c)) {
          agg_col = c;
          break;
        }
      }
      AggregationQuery a;
      a.tables = {name, partner};
      a.joins = {{0, agg_col, 1,
                  dim->schema().primary_key().empty()
                      ? 0
                      : dim->schema().primary_key()[0]}};
      a.aggregates = {{AggFn::kSum, {agg_col, 0}}};
      if (group_uses > 0) a.group_by = {{group_col, 0}};
      model.push_back({Query(a), static_cast<double>(count)});
    }
  }
  return model;
}

}  // namespace hsdb
