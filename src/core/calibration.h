// Cost-model calibration (paper §4, Fig. 5 "Initialize cost model"): runs
// representative probe queries against the engine, measures them, and fits
// the base costs and adjustment functions of CostModelParams. The probe
// execution is behind the ProbeRunner interface so fitting logic is unit-
// testable with a deterministic fake.
#ifndef HSDB_CORE_CALIBRATION_H_
#define HSDB_CORE_CALIBRATION_H_

#include <string>
#include <vector>

#include "core/cost_model.h"

namespace hsdb {

/// One probe measurement: median wall time plus the observed column-store
/// compression rate of the probed table (1.0 for row-store probes).
struct ProbeResult {
  double ms = 0.0;
  double compression_rate = 1.0;
};

/// Executes calibration probes. The engine-backed implementation lives in
/// core/probe_runner.h; tests inject closed-form fakes.
class ProbeRunner {
 public:
  virtual ~ProbeRunner() = default;

  /// Aggregation of `fn` over a column of `type`; `distinct` bounds the
  /// aggregated column's distinct values (0 = all distinct) — the knob that
  /// sweeps the compression rate.
  virtual ProbeResult MeasureAggregation(StoreType store, AggFn fn,
                                         DataType type, bool grouped,
                                         bool filtered, size_t rows,
                                         uint64_t distinct) = 0;

  /// Range select of `selected_columns` columns at `selectivity`;
  /// `use_index` controls whether the row store may use a sorted index.
  virtual ProbeResult MeasureSelect(StoreType store, size_t selected_columns,
                                    double selectivity, bool use_index,
                                    size_t rows) = 0;

  /// Primary-key point lookup retrieving one column.
  virtual ProbeResult MeasurePointSelect(StoreType store, size_t rows) = 0;

  /// Per-statement cost of inserting into a table of `rows` rows.
  virtual ProbeResult MeasureInsert(StoreType store, size_t rows) = 0;

  /// Update of `affected_columns` columns on `affected_rows` rows.
  virtual ProbeResult MeasureUpdate(StoreType store, size_t affected_columns,
                                    size_t affected_rows, size_t rows) = 0;

  /// Ungrouped SUM over fact JOIN dim for one store combination.
  virtual ProbeResult MeasureJoin(StoreType fact_store, StoreType dim_store,
                                  size_t fact_rows, size_t dim_rows) = 0;

  /// Extra cost of an aggregation spanning both pieces of a vertical split
  /// versus one covered by a single piece (per-table-size point).
  virtual ProbeResult MeasureStitch(size_t rows) = 0;

  /// Ungrouped SUM scan at degree of parallelism `dop` (same table shape as
  /// MeasureAggregation at the reference point). Non-pure with a zero
  /// default so fakes that predate the parallel terms keep compiling; a
  /// zero measurement skips the parallel fit and keeps the analytic
  /// defaults.
  virtual ProbeResult MeasureParallelScan(StoreType store, int dop,
                                          size_t rows) {
    (void)store;
    (void)dop;
    (void)rows;
    return ProbeResult{};
  }
};

struct CalibrationOptions {
  /// Reference configuration: base costs are the measured cost here and all
  /// adjustment functions are normalized to 1 at this point.
  size_t reference_rows = 200'000;
  uint64_t reference_distinct = 1024;
  double reference_selectivity = 0.01;
  size_t reference_dim_rows = 1000;

  /// Row sweep spans both the in-cache and out-of-cache regimes so linear
  /// fits do not extrapolate across a cache cliff.
  std::vector<size_t> row_points = {50'000, 200'000, 500'000, 1'000'000};
  std::vector<double> selectivity_points = {0.001, 0.01, 0.05, 0.2};
  std::vector<size_t> column_points = {1, 2, 4, 8};
  std::vector<uint64_t> distinct_points = {16, 1024, 65'536, 0};
  std::vector<size_t> affected_rows_points = {1, 4, 16, 64};
  std::vector<size_t> dim_row_points = {100, 1000, 5000};

  /// Also run the per-codec decode and encode microprobes and install the
  /// measured compressed-scan multipliers (StoreCostParams::c_encoding_scan)
  /// and delta-merge re-encode multipliers
  /// (StoreCostParams::c_encoding_reencode).
  bool calibrate_encoding_scan = true;

  /// Degrees of parallelism to probe for the per-store parallel scan terms
  /// (c_parallel_core); dop 1 is always measured as the baseline. Empty, or
  /// a runner whose MeasureParallelScan returns zero, keeps the analytic
  /// defaults.
  std::vector<int> parallel_dop_points = {2, 4};
};

/// Selectivity of the aggregation filter probe; the fitted c_agg_filter is
/// the measured ratio minus the aggregation work on this fraction.
inline constexpr double kAggFilterProbeSelectivity = 0.5;

struct CalibrationReport {
  CostModelParams params;
  /// Mean r² across all linear fits (1.0 = perfectly linear system).
  double mean_r_squared = 0.0;
  /// Human-readable fitting log.
  std::string log;
};

/// Runs the full probe suite and fits CostModelParams.
CalibrationReport Calibrate(ProbeRunner& runner,
                            const CalibrationOptions& options);

}  // namespace hsdb

#endif  // HSDB_CORE_CALIBRATION_H_
