#include "core/workload_cost.h"

#include <algorithm>

#include "storage/row_table.h"

namespace hsdb {

std::vector<WeightedQuery> ToWeighted(const std::vector<Query>& queries) {
  std::vector<WeightedQuery> out;
  out.reserve(queries.size());
  for (const Query& q : queries) out.push_back(WeightedQuery{q, 1.0});
  return out;
}

namespace {

/// Column sets of the two pieces of a vertical split.
struct VerticalPieces {
  std::vector<bool> in_rs;  // per logical column: stored in the RS piece
  std::vector<bool> in_cs;  // stored in the CS/base piece
};

VerticalPieces SplitColumns(const Schema& schema, const VerticalSpec& spec) {
  VerticalPieces p;
  p.in_rs.assign(schema.num_columns(), false);
  p.in_cs.assign(schema.num_columns(), false);
  for (ColumnId c = 0; c < schema.num_columns(); ++c) {
    bool is_rs = std::find(spec.row_store_columns.begin(),
                           spec.row_store_columns.end(),
                           c) != spec.row_store_columns.end();
    if (schema.IsPrimaryKeyColumn(c)) {
      p.in_rs[c] = true;
      p.in_cs[c] = true;
    } else if (is_rs) {
      p.in_rs[c] = true;
    } else {
      p.in_cs[c] = true;
    }
  }
  return p;
}

bool Covered(const std::vector<bool>& piece,
             const std::vector<ColumnId>& cols) {
  for (ColumnId c : cols) {
    if (c >= piece.size() || !piece[c]) return false;
  }
  return true;
}

std::vector<const PredicateTerm*> TermsForTable(const Predicate& predicate,
                                                int table_index) {
  std::vector<const PredicateTerm*> terms;
  for (const PredicateTerm& term : predicate) {
    if (term.column.table_index == table_index) terms.push_back(&term);
  }
  return terms;
}

}  // namespace

double EncodedRowFraction(const LayoutContext& ctx, const Schema& schema,
                          ColumnId col) {
  const TableLayout& layout = ctx.layout;
  const double hot = layout.horizontal.has_value()
                         ? std::clamp(ctx.hot_row_fraction, 0.0, 1.0)
                         : 0.0;
  double fraction = 0.0;
  // Cold/base piece: the column is encoded there when the base piece is
  // column-resident and a vertical split does not send it to the row store
  // (the replicated primary key stays encoded in the base piece).
  bool in_base_cs = layout.base_store == StoreType::kColumn;
  if (in_base_cs && layout.vertical.has_value() &&
      !schema.IsPrimaryKeyColumn(col)) {
    const std::vector<ColumnId>& rs = layout.vertical->row_store_columns;
    in_base_cs = std::find(rs.begin(), rs.end(), col) == rs.end();
  }
  if (in_base_cs) fraction += 1.0 - hot;
  // Hot piece: whole rows, so every column is encoded when it is a
  // column-store partition.
  if (layout.horizontal.has_value() &&
      layout.horizontal->hot_store == StoreType::kColumn) {
    fraction += hot;
  }
  return fraction;
}

WorkloadCostEstimator::TableFacts WorkloadCostEstimator::FactsOf(
    const std::string& name) const {
  TableFacts facts;
  facts.table = catalog_->GetTable(name);
  facts.stats = catalog_->GetStatistics(name);
  if (facts.stats != nullptr) {
    facts.rows = static_cast<double>(facts.stats->row_count);
    facts.compression = facts.stats->table_compression_rate;
    if (!facts.stats->columns.empty()) {
      double total = 0.0;
      for (const ColumnStatistics& cs : facts.stats->columns) {
        total += model_->EncodingScanMultiplier(StoreType::kColumn,
                                                cs.encoding);
      }
      facts.encoding_scan =
          total / static_cast<double>(facts.stats->columns.size());
    }
  } else if (facts.table != nullptr) {
    facts.rows = static_cast<double>(facts.table->row_count());
  }
  return facts;
}

double WorkloadCostEstimator::ScanEncodingMultiplier(
    const TableFacts& facts, const LayoutContext& ctx,
    const std::vector<ColumnId>& needed) const {
  // Per-column codecs come from the layout's candidate assignment (the
  // encoding search) first, the statistics' picker choices second. With
  // neither there is nothing finer than the table-wide mean.
  const bool has_stats =
      facts.stats != nullptr && !facts.stats->columns.empty();
  if (ctx.encodings.empty() && !has_stats) return facts.encoding_scan;
  // Only columns resident in a column-store piece have an encoded segment
  // to decode; a vertical split's row-store columns contribute nothing.
  auto encoding_of = [&](ColumnId c) -> std::optional<Encoding> {
    if (facts.table != nullptr &&
        !ColumnInColumnStorePiece(ctx.layout, facts.table->schema(), c)) {
      return std::nullopt;
    }
    if (c < ctx.encodings.size()) return ctx.encodings[c];
    if (has_stats && c < facts.stats->columns.size()) {
      return facts.stats->columns[c].encoding;
    }
    return std::nullopt;
  };
  double total = 0.0;
  size_t count = 0;
  if (!needed.empty()) {
    // Mean over the distinct columns the query touches: the scan decodes
    // exactly these segments.
    std::vector<ColumnId> cols = needed;
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    for (ColumnId c : cols) {
      if (std::optional<Encoding> e = encoding_of(c)) {
        total += model_->EncodingScanMultiplier(StoreType::kColumn, *e);
        ++count;
      }
    }
  }
  if (count == 0) {
    // Column-blind queries (COUNT(*)-style) decode whatever they touch;
    // charge the table-wide mean.
    const size_t n =
        std::max(ctx.encodings.size(),
                 has_stats ? facts.stats->columns.size() : size_t{0});
    for (ColumnId c = 0; c < n; ++c) {
      if (std::optional<Encoding> e = encoding_of(c)) {
        total += model_->EncodingScanMultiplier(StoreType::kColumn, *e);
        ++count;
      }
    }
  }
  return count == 0 ? facts.encoding_scan
                    : total / static_cast<double>(count);
}

double WorkloadCostEstimator::InsertReencodeMultiplier(
    const TableFacts& facts, const LayoutContext& ctx) const {
  // A merge re-encodes every column of the column-store piece — and only
  // those: the non-key columns a vertical split sends to the row store
  // carry no re-encode work.
  auto encoded_in_cs_piece = [&](ColumnId c) {
    if (facts.table == nullptr) return true;
    return ColumnInColumnStorePiece(ctx.layout, facts.table->schema(), c);
  };
  double total = 0.0;
  size_t count = 0;
  if (!ctx.encodings.empty()) {
    for (ColumnId c = 0; c < ctx.encodings.size(); ++c) {
      if (!encoded_in_cs_piece(c)) continue;
      total += model_->EncodingReencodeMultiplier(StoreType::kColumn,
                                                  ctx.encodings[c]);
      ++count;
    }
  } else if (facts.stats != nullptr) {
    for (ColumnId c = 0; c < facts.stats->columns.size(); ++c) {
      if (!encoded_in_cs_piece(c)) continue;
      total += model_->EncodingReencodeMultiplier(
          StoreType::kColumn, facts.stats->columns[c].encoding);
      ++count;
    }
  }
  return count == 0 ? 1.0 : total / static_cast<double>(count);
}

double WorkloadCostEstimator::PredicateSelectivity(
    const TableFacts& facts,
    const std::vector<const PredicateTerm*>& terms) const {
  if (terms.empty()) return 1.0;
  double selectivity = 1.0;
  for (const PredicateTerm* term : terms) {
    if (facts.stats != nullptr &&
        term->column.column < facts.stats->columns.size()) {
      selectivity *=
          facts.stats->EstimateSelectivity(term->column.column, term->range);
    } else {
      selectivity *= term->range.IsPoint() ? 0.001 : 0.1;
    }
  }
  return std::clamp(selectivity, 0.0, 1.0);
}

bool WorkloadCostEstimator::HasRowStoreIndex(
    const TableFacts& facts,
    const std::vector<const PredicateTerm*>& terms) const {
  if (facts.table == nullptr) return false;
  const Schema& schema = facts.table->schema();
  for (const PredicateTerm* term : terms) {
    // Primary-key point access uses the hash index.
    if (schema.primary_key().size() == 1 &&
        term->column.column == schema.primary_key()[0] &&
        term->range.IsPoint()) {
      return true;
    }
    // A sorted secondary index on any predicate column of a row-store piece.
    for (const RowGroup& group : facts.table->groups()) {
      for (const Fragment& frag : group.fragments) {
        if (!frag.Contains(term->column.column)) continue;
        if (const auto* rs = dynamic_cast<const RowTable*>(frag.table.get())) {
          if (rs->HasSortedIndex(frag.FragColumn(term->column.column))) {
            return true;
          }
        }
      }
    }
  }
  return false;
}

double WorkloadCostEstimator::QueryCost(const Query& query,
                                        const LayoutProvider& layout_of)
    const {
  switch (KindOf(query)) {
    case QueryKind::kAggregation:
      return AggregationQueryCost(std::get<AggregationQuery>(query),
                                  layout_of);
    case QueryKind::kSelect:
      return SelectQueryCost(std::get<SelectQuery>(query), layout_of);
    case QueryKind::kInsert:
      return InsertQueryCost(std::get<InsertQuery>(query), layout_of);
    case QueryKind::kUpdate:
      return UpdateQueryCost(std::get<UpdateQuery>(query), layout_of);
    case QueryKind::kDelete:
      return DeleteQueryCost(std::get<DeleteQuery>(query), layout_of);
  }
  return 0.0;
}

double WorkloadCostEstimator::AggregationQueryCost(
    const AggregationQuery& q, const LayoutProvider& layout_of) const {
  TableFacts fact = FactsOf(q.tables[0]);
  if (fact.table == nullptr) return 0.0;
  const Schema& schema = fact.table->schema();

  std::vector<AggSpec> aggs;
  for (const AggregateExpr& agg : q.aggregates) {
    DataType type = DataType::kInt64;
    if (agg.fn != AggFn::kCount && agg.column.table_index == 0) {
      type = schema.column(agg.column.column).type;
    }
    aggs.push_back(AggSpec{agg.fn, type});
  }
  const bool grouped = !q.group_by.empty();
  const bool filtered = !q.predicate.empty();
  // Fact-side predicate selectivity scales the aggregation/probe work.
  std::vector<const PredicateTerm*> fact_terms = TermsForTable(q.predicate, 0);
  double selectivity = PredicateSelectivity(fact, fact_terms);
  LayoutContext ctx = layout_of(q.tables[0]);

  // Fact-side columns the query touches: they decide which vertical piece
  // serves it and which encoded segments a column-store scan decodes.
  std::vector<ColumnId> needed;
  for (const AggregateExpr& agg : q.aggregates) {
    if (agg.fn != AggFn::kCount && agg.column.table_index == 0) {
      needed.push_back(agg.column.column);
    }
  }
  for (const ColumnRef& ref : q.group_by) {
    if (ref.table_index == 0) needed.push_back(ref.column);
  }
  for (const PredicateTerm* term : fact_terms) {
    needed.push_back(term->column.column);
  }
  const double enc_scan = ScanEncodingMultiplier(fact, ctx, needed);

  // Join queries: cost per store combination of the involved tables.
  if (q.tables.size() > 1) {
    std::vector<CostModel::JoinSide> dims;
    for (size_t t = 1; t < q.tables.size(); ++t) {
      TableFacts dim = FactsOf(q.tables[t]);
      LayoutContext dim_ctx = layout_of(q.tables[t]);
      dims.push_back(CostModel::JoinSide{dim_ctx.layout.base_store, dim.rows,
                                         dim.compression});
    }
    double cost = 0.0;
    double cold_rows = fact.rows;
    if (ctx.layout.horizontal.has_value()) {
      double hot_rows = fact.rows * ctx.hot_row_fraction;
      cold_rows = fact.rows - hot_rows;
      cost += model_->JoinAggregationCost(
          ctx.layout.horizontal->hot_store, aggs, grouped, filtered,
          hot_rows, 1.0, dims, selectivity);
      cost += model_->UnionOverhead();
    }
    cost += model_->JoinAggregationCost(ctx.layout.base_store, aggs, grouped,
                                        filtered, cold_rows,
                                        fact.compression, dims, selectivity,
                                        enc_scan);
    return cost;
  }

  double cost = 0.0;
  double cold_rows = fact.rows;
  if (ctx.layout.horizontal.has_value()) {
    double hot_rows = fact.rows * ctx.hot_row_fraction;
    cold_rows = fact.rows - hot_rows;
    cost += model_->AggregationCost(ctx.layout.horizontal->hot_store, aggs,
                                    grouped, filtered, hot_rows, 1.0,
                                    selectivity);
    cost += model_->UnionOverhead();
  }
  if (ctx.layout.vertical.has_value()) {
    VerticalPieces pieces = SplitColumns(schema, *ctx.layout.vertical);
    if (Covered(pieces.in_cs, needed)) {
      cost += model_->AggregationCost(ctx.layout.base_store, aggs, grouped,
                                      filtered, cold_rows, fact.compression,
                                      selectivity, enc_scan);
    } else if (Covered(pieces.in_rs, needed)) {
      cost += model_->AggregationCost(StoreType::kRow, aggs, grouped,
                                      filtered, cold_rows, 1.0, selectivity);
    } else {
      // Spanning: CS piece scan plus the PK-stitch penalty.
      cost += model_->AggregationCost(ctx.layout.base_store, aggs, grouped,
                                      filtered, cold_rows, fact.compression,
                                      selectivity, enc_scan);
      cost += model_->StitchCost(cold_rows);
    }
  } else {
    cost += model_->AggregationCost(ctx.layout.base_store, aggs, grouped,
                                    filtered, cold_rows, fact.compression,
                                    selectivity, enc_scan);
  }
  return cost;
}

double WorkloadCostEstimator::SelectQueryCost(
    const SelectQuery& q, const LayoutProvider& layout_of) const {
  TableFacts facts = FactsOf(q.table);
  if (facts.table == nullptr) return 0.0;
  const Schema& schema = facts.table->schema();
  std::vector<const PredicateTerm*> terms = TermsForTable(q.predicate, 0);
  double selectivity = PredicateSelectivity(facts, terms);
  bool rs_indexed = HasRowStoreIndex(facts, terms);
  LayoutContext ctx = layout_of(q.table);
  size_t k = q.select_columns.size();

  // Primary-key point lookups take the hash-index fast path in both stores;
  // their cost is reconstruction width, not scanning.
  const bool pk_point =
      schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0]);
  if (pk_point) {
    auto point_in = [&](StoreType store) {
      return model_->PointSelectCost(store, k);
    };
    double cold;
    if (ctx.layout.vertical.has_value()) {
      VerticalPieces pieces = SplitColumns(schema, *ctx.layout.vertical);
      std::vector<ColumnId> needed_cols = q.select_columns;
      if (Covered(pieces.in_rs, needed_cols)) {
        cold = point_in(StoreType::kRow);
      } else if (Covered(pieces.in_cs, needed_cols)) {
        cold = point_in(ctx.layout.base_store);
      } else {
        cold = point_in(StoreType::kRow) + point_in(ctx.layout.base_store);
      }
    } else {
      cold = point_in(ctx.layout.base_store);
    }
    if (!ctx.layout.horizontal.has_value()) return cold;
    double h = ctx.hot_access_fraction;
    return h * point_in(ctx.layout.horizontal->hot_store) + (1.0 - h) * cold;
  }

  std::vector<ColumnId> needed = q.select_columns;
  for (const PredicateTerm* term : terms) needed.push_back(term->column.column);
  const double enc_scan = ScanEncodingMultiplier(facts, ctx, needed);

  // Which piece(s) serve the select?
  auto piece_cost = [&](StoreType store, double rows, bool spanning) {
    double c = model_->SelectCost(store, k, selectivity,
                                  store == StoreType::kRow ? rs_indexed
                                                           : true,
                                  rows, enc_scan);
    if (spanning) c += model_->StitchCost(selectivity * rows + 1.0);
    return c;
  };

  auto cold_cost = [&](double rows) {
    if (!ctx.layout.vertical.has_value()) {
      return piece_cost(ctx.layout.base_store, rows, false);
    }
    VerticalPieces pieces = SplitColumns(schema, *ctx.layout.vertical);
    if (Covered(pieces.in_rs, needed)) {
      return piece_cost(StoreType::kRow, rows, false);
    }
    if (Covered(pieces.in_cs, needed)) {
      return piece_cost(ctx.layout.base_store, rows, false);
    }
    return piece_cost(ctx.layout.base_store, rows, true) +
           model_->SelectCost(StoreType::kRow, k, selectivity, rs_indexed,
                              rows);
  };

  if (!ctx.layout.horizontal.has_value()) return cold_cost(facts.rows);
  double hot_rows = facts.rows * ctx.hot_row_fraction;
  double cold_rows = facts.rows - hot_rows;
  // Point-ish accesses hit the hot piece with hot_access_fraction; range
  // scans over the whole table touch both pieces.
  bool is_point = terms.size() == 1 && terms[0]->range.IsPoint() &&
                  schema.primary_key().size() == 1 &&
                  terms[0]->column.column == schema.primary_key()[0];
  if (is_point) {
    double h = ctx.hot_access_fraction;
    return h * piece_cost(ctx.layout.horizontal->hot_store, hot_rows, false) +
           (1.0 - h) * cold_cost(cold_rows);
  }
  return piece_cost(ctx.layout.horizontal->hot_store, hot_rows, false) +
         cold_cost(cold_rows) + model_->UnionOverhead();
}

double WorkloadCostEstimator::InsertQueryCost(
    const InsertQuery& q, const LayoutProvider& layout_of) const {
  TableFacts facts = FactsOf(q.table);
  LayoutContext ctx = layout_of(q.table);
  // A column-store piece amortizes delta-merge re-encoding of every column
  // into its insert cost; the multiplier is 1 for row-store pieces.
  const double reencode = InsertReencodeMultiplier(facts, ctx);

  auto cold_cost = [&](double rows) {
    if (!ctx.layout.vertical.has_value()) {
      return model_->InsertCost(ctx.layout.base_store, rows, reencode);
    }
    // Vertical split: the tuple is written into both pieces.
    return model_->InsertCost(StoreType::kRow, rows) +
           model_->InsertCost(ctx.layout.base_store, rows, reencode);
  };

  if (!ctx.layout.horizontal.has_value()) return cold_cost(facts.rows);
  double hot_rows = facts.rows * ctx.hot_row_fraction;
  double h = ctx.hot_insert_fraction;
  return h * model_->InsertCost(ctx.layout.horizontal->hot_store, hot_rows,
                                reencode) +
         (1.0 - h) * cold_cost(facts.rows - hot_rows);
}

double WorkloadCostEstimator::UpdateQueryCost(
    const UpdateQuery& q, const LayoutProvider& layout_of) const {
  TableFacts facts = FactsOf(q.table);
  if (facts.table == nullptr) return 0.0;
  const Schema& schema = facts.table->schema();
  std::vector<const PredicateTerm*> terms = TermsForTable(q.predicate, 0);
  double selectivity = PredicateSelectivity(facts, terms);
  double affected = std::max(1.0, selectivity * facts.rows);
  LayoutContext ctx = layout_of(q.table);

  // Updates that do not hit the primary key point-wise must first locate the
  // affected rows — a select-shaped cost the store pays before writing. This
  // is what makes e.g. "update all lines of one order" expensive on a
  // column-store piece without the hash-index fast path.
  const bool pk_point =
      schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0]);
  const bool rs_indexed = HasRowStoreIndex(facts, terms);

  // Predicate columns decide which vertical piece performs the locate (and
  // which encoded segments a column-store locate scans).
  std::vector<ColumnId> pred_cols;
  for (const PredicateTerm* term : terms) {
    pred_cols.push_back(term->column.column);
  }
  const double enc_scan = ScanEncodingMultiplier(facts, ctx, pred_cols);

  auto locate_in = [&](StoreType store, double rows) {
    if (pk_point || rows <= 0.0) return 0.0;
    return model_->SelectCost(
        store, 1, selectivity,
        store == StoreType::kRow ? rs_indexed : true, rows, enc_scan);
  };

  auto cold_cost = [&](double rows) {
    if (!ctx.layout.vertical.has_value()) {
      return locate_in(ctx.layout.base_store, rows) +
             model_->UpdateCost(ctx.layout.base_store, q.set_columns.size(),
                                affected, rows);
    }
    VerticalPieces pieces = SplitColumns(schema, *ctx.layout.vertical);
    StoreType locate_store = Covered(pieces.in_rs, pred_cols)
                                 ? StoreType::kRow
                                 : ctx.layout.base_store;
    size_t rs_cols = 0;
    size_t cs_cols = 0;
    for (ColumnId c : q.set_columns) {
      if (c < pieces.in_rs.size() && pieces.in_rs[c] &&
          !schema.IsPrimaryKeyColumn(c)) {
        ++rs_cols;
      } else {
        ++cs_cols;
      }
    }
    double cost = locate_in(locate_store, rows);
    if (rs_cols > 0) {
      cost += model_->UpdateCost(StoreType::kRow, rs_cols, affected, rows);
    }
    if (cs_cols > 0) {
      cost += model_->UpdateCost(ctx.layout.base_store, cs_cols, affected,
                                 rows);
    }
    return cost;
  };

  if (!ctx.layout.horizontal.has_value()) return cold_cost(facts.rows);
  double hot_rows = facts.rows * ctx.hot_row_fraction;
  double h = ctx.hot_access_fraction;
  StoreType hot_store = ctx.layout.horizontal->hot_store;
  return h * (locate_in(hot_store, hot_rows) +
              model_->UpdateCost(hot_store, q.set_columns.size(), affected,
                                 hot_rows)) +
         (1.0 - h) * cold_cost(facts.rows - hot_rows);
}

double WorkloadCostEstimator::DeleteQueryCost(
    const DeleteQuery& q, const LayoutProvider& layout_of) const {
  TableFacts facts = FactsOf(q.table);
  if (facts.table == nullptr) return 0.0;
  const Schema& schema = facts.table->schema();
  std::vector<const PredicateTerm*> terms = TermsForTable(q.predicate, 0);
  double selectivity = PredicateSelectivity(facts, terms);
  double affected = std::max(1.0, selectivity * facts.rows);
  LayoutContext ctx = layout_of(q.table);
  StoreType store = ctx.layout.base_store;
  if (ctx.layout.horizontal.has_value() && ctx.hot_access_fraction > 0.5) {
    store = ctx.layout.horizontal->hot_store;
  }
  const bool pk_point =
      schema.primary_key().size() == 1 &&
      IsPointPredicateOn(q.predicate, schema.primary_key()[0]);
  double locate = 0.0;
  if (!pk_point) {
    locate = model_->SelectCost(
        store, 1, selectivity,
        store == StoreType::kRow ? HasRowStoreIndex(facts, terms) : true,
        facts.rows);
  }
  return locate + model_->DeleteCost(store, affected, facts.rows);
}

double WorkloadCostEstimator::WorkloadCost(
    const std::vector<WeightedQuery>& workload,
    const LayoutProvider& layout_of) const {
  double total = 0.0;
  for (const WeightedQuery& wq : workload) {
    total += wq.weight * QueryCost(wq.query, layout_of);
  }
  return total;
}

double WorkloadCostEstimator::WorkloadCostSingleStore(
    const std::vector<WeightedQuery>& workload, StoreType store) const {
  return WorkloadCost(workload, [store](const std::string&) {
    return LayoutContext::SingleStore(store);
  });
}

double WorkloadCostEstimator::WorkloadCostAssignment(
    const std::vector<WeightedQuery>& workload,
    const std::map<std::string, StoreType>& assignment,
    StoreType fallback) const {
  return WorkloadCost(workload, [&](const std::string& name) {
    auto it = assignment.find(name);
    return LayoutContext::SingleStore(it == assignment.end() ? fallback
                                                             : it->second);
  });
}

LayoutContext CurrentLayoutContext(const LogicalTable& table,
                                   const TableStatistics* stats) {
  LayoutContext ctx;
  ctx.layout = table.layout();
  if (ctx.layout.horizontal.has_value() && stats != nullptr) {
    const ColumnId pk = ctx.layout.horizontal->column;
    if (pk < stats->columns.size() && stats->column(pk).min.has_value() &&
        stats->column(pk).max.has_value()) {
      const double domain =
          std::max(1.0, *stats->column(pk).max - *stats->column(pk).min);
      ctx.hot_row_fraction = std::clamp(
          (*stats->column(pk).max - ctx.layout.horizontal->boundary) /
              domain,
          0.0, 1.0);
      // A boundary above the data domain is the fresh-data partition: the
      // hot piece is (still) empty and point access targets existing cold
      // rows — the same locality PartitionAdvisor attached when it created
      // the split. Populated hot ranges keep the optimistic default (the
      // range was chosen because accesses concentrate there).
      if (ctx.hot_row_fraction == 0.0) ctx.hot_access_fraction = 0.0;
    }
  }
  return ctx;
}

bool EncodingsDiffer(const Schema& schema, const LayoutContext& ctx,
                     const TableStatistics* stats) {
  if (ctx.encodings.size() != schema.num_columns() || stats == nullptr ||
      stats->columns.size() != schema.num_columns()) {
    return false;
  }
  for (ColumnId c = 0; c < schema.num_columns(); ++c) {
    if (ColumnInColumnStorePiece(ctx.layout, schema, c) &&
        ctx.encodings[c] != stats->column(c).encoding) {
      return true;
    }
  }
  return false;
}

}  // namespace hsdb
