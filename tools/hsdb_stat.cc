// hsdb_stat: exercise the engine with a small synthetic workload and dump
// the telemetry it produced — the quickest way to see every metric the
// engine exports and to smoke-test a scrape pipeline without wiring a real
// deployment.
//
//   $ ./build/hsdb_stat              # human-readable telemetry report
//   $ ./build/hsdb_stat --text      # Prometheus text exposition
//   $ ./build/hsdb_stat --json     # JSON exposition
//   $ ./build/hsdb_stat --queries 2000 --text
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/advisor.h"
#include "online/controller.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hsdb;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--text | --json | --report] [--queries N]\n"
               "  --report  human-readable telemetry snapshot (default)\n"
               "  --text    Prometheus text exposition format\n"
               "  --json    JSON exposition\n"
               "  --queries N  synthetic queries to run (default 1000)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kReport, kText, kJson };
  Mode mode = Mode::kReport;
  int queries = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--text") == 0) {
      mode = Mode::kText;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      mode = Mode::kJson;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      mode = Mode::kReport;
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::atoi(argv[++i]);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // A mixed OLTP/OLAP stream over one synthetic table, with the advisor
  // attached so every query carries a predicted cost (the residual metrics
  // need a prediction to compare the observation against) and one online
  // re-search + adaptation tick populates the advisor/controller metrics.
  SyntheticTableSpec spec;
  spec.name = "events";
  const size_t rows = 20'000;

  Database db;
  HSDB_CHECK(db.CreateTable(spec.name, spec.MakeSchema(),
                            TableLayout::SingleStore(StoreType::kColumn))
                 .ok());
  HSDB_CHECK(
      PopulateSynthetic(db.catalog().GetTable(spec.name), spec, rows).ok());
  db.catalog().UpdateAllStatistics();

  StorageAdvisor advisor(&db);
  advisor.StartRecording();

  WorkloadOptions opts;
  opts.olap_fraction = 0.4;
  opts.seed = 7;
  SyntheticWorkloadGenerator gen(spec, rows, opts);
  RunWorkload(db, gen.Generate(static_cast<size_t>(queries)));

  Result<Recommendation> rec = advisor.RecommendOnline();
  if (rec.ok()) {
    (void)advisor.Apply(*rec);
  }
  AdaptationOptions adapt;
  adapt.min_epoch_queries = 1;
  AdaptationController& controller = advisor.StartAutoAdapt(adapt);
  RunWorkload(db, gen.Generate(static_cast<size_t>(queries) / 4 + 1));
  controller.Tick();
  advisor.StopAutoAdapt();
  advisor.StopRecording();

  switch (mode) {
    case Mode::kText:
      std::fputs(db.metrics().ExportText().c_str(), stdout);
      break;
    case Mode::kJson:
      std::fputs(db.metrics().ExportJson().c_str(), stdout);
      std::fputc('\n', stdout);
      break;
    case Mode::kReport: {
      TelemetryReport report = db.TelemetrySnapshot();
      std::fputs(report.ToString().c_str(), stdout);
      if (!telemetry::kCompiledIn) {
        std::puts("(built with HSDB_TELEMETRY=OFF)");
      }
      break;
    }
  }
  return 0;
}
