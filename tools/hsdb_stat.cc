// hsdb_stat: exercise the engine with a small synthetic workload and dump
// the telemetry it produced — the quickest way to see every metric the
// engine exports and to smoke-test a scrape pipeline without wiring a real
// deployment. With --connect it scrapes a *live* hsdb_server's HTTP
// introspection endpoint instead of running the in-process workload.
//
//   $ ./build/hsdb_stat              # human-readable telemetry report
//   $ ./build/hsdb_stat --text      # Prometheus text exposition
//   $ ./build/hsdb_stat --json     # JSON exposition
//   $ ./build/hsdb_stat --queries 2000 --text
//   $ ./build/hsdb_stat --slowlog --queries 500    # slow queries as JSONL
//   $ ./build/hsdb_stat --connect 127.0.0.1:8080           # /metrics+/status
//   $ ./build/hsdb_stat --connect 127.0.0.1:8080 --slowlog # /slowlog
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/advisor.h"
#include "online/controller.h"
#include "workload/generator.h"
#include "workload/runner.h"

using namespace hsdb;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--text | --json | --report | --slowlog] [--queries N]\n"
      "       %s --connect HOST:PORT [--text | --slowlog | --status]\n"
      "  --report        human-readable telemetry snapshot (default)\n"
      "  --text          Prometheus text exposition format\n"
      "  --json          JSON exposition\n"
      "  --slowlog       slow-query log as JSON lines\n"
      "  --queries N     synthetic queries to run (default 1000)\n"
      "  --connect H:P   scrape a live server's HTTP endpoint instead of\n"
      "                  running the in-process workload (default scrape:\n"
      "                  /metrics then /status)\n"
      "  --status        with --connect: scrape only /status\n",
      argv0, argv0);
}

// Minimal HTTP/1.0-style GET over a raw socket: connects, sends the request,
// returns the response body (everything after the blank line). No external
// HTTP library — the endpoint answers one request per connection and closes,
// which is exactly the framing we read to EOF here.
bool HttpGet(const std::string& host, int port, const std::string& target,
             std::string* body, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    *error = std::string("getaddrinfo: ") + ::gai_strerror(rc);
    return false;
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    ::freeaddrinfo(res);
    return false;
  }
  if (::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    ::freeaddrinfo(res);
    ::close(fd);
    return false;
  }
  ::freeaddrinfo(res);
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      *error = std::string("send: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    *error = "malformed response (no header terminator)";
    return false;
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    *error = "server answered: " + status_line;
    return false;
  }
  *body = response.substr(head_end + 4);
  return true;
}

int ScrapeLive(const std::string& host, int port, bool slowlog, bool status,
               bool text_only) {
  std::string body;
  std::string error;
  if (slowlog) {
    if (!HttpGet(host, port, "/slowlog", &body, &error)) {
      std::fprintf(stderr, "scrape /slowlog failed: %s\n", error.c_str());
      return 1;
    }
    std::fputs(body.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (status) {
    if (!HttpGet(host, port, "/status", &body, &error)) {
      std::fprintf(stderr, "scrape /status failed: %s\n", error.c_str());
      return 1;
    }
    std::fputs(body.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (!HttpGet(host, port, "/metrics", &body, &error)) {
    std::fprintf(stderr, "scrape /metrics failed: %s\n", error.c_str());
    return 1;
  }
  std::fputs(body.c_str(), stdout);
  if (text_only) return 0;
  if (!HttpGet(host, port, "/status", &body, &error)) {
    std::fprintf(stderr, "scrape /status failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("\n# status\n%s\n", body.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kReport, kText, kJson, kSlowlog };
  Mode mode = Mode::kReport;
  int queries = 1000;
  std::string connect;
  bool status_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--text") == 0) {
      mode = Mode::kText;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      mode = Mode::kJson;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      mode = Mode::kReport;
    } else if (std::strcmp(argv[i], "--slowlog") == 0) {
      mode = Mode::kSlowlog;
    } else if (std::strcmp(argv[i], "--status") == 0) {
      status_only = true;
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::atoi(argv[++i]);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  if (!connect.empty()) {
    const size_t colon = connect.rfind(':');
    if (colon == std::string::npos || colon + 1 >= connect.size()) {
      std::fprintf(stderr, "--connect wants HOST:PORT, got '%s'\n",
                   connect.c_str());
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    const int port = std::atoi(connect.c_str() + colon + 1);
    return ScrapeLive(host, port, mode == Mode::kSlowlog, status_only,
                      mode == Mode::kText);
  }

  // A mixed OLTP/OLAP stream over one synthetic table, with the advisor
  // attached so every query carries a predicted cost (the residual metrics
  // need a prediction to compare the observation against) and one online
  // re-search + adaptation tick populates the advisor/controller metrics.
  SyntheticTableSpec spec;
  spec.name = "events";
  const size_t rows = 20'000;

  Database::Options db_options;
  if (mode == Mode::kSlowlog) {
    // Everything qualifies as "slow" so the log has content to show.
    db_options.slowlog_threshold_ms = 0.0001;
  }
  Database db(db_options);
  HSDB_CHECK(db.CreateTable(spec.name, spec.MakeSchema(),
                            TableLayout::SingleStore(StoreType::kColumn))
                 .ok());
  HSDB_CHECK(
      PopulateSynthetic(db.catalog().GetTable(spec.name), spec, rows).ok());
  db.catalog().UpdateAllStatistics();

  StorageAdvisor advisor(&db);
  advisor.StartRecording();

  WorkloadOptions opts;
  opts.olap_fraction = 0.4;
  opts.seed = 7;
  SyntheticWorkloadGenerator gen(spec, rows, opts);
  RunWorkload(db, gen.Generate(static_cast<size_t>(queries)));

  Result<Recommendation> rec = advisor.RecommendOnline();
  if (rec.ok()) {
    (void)advisor.Apply(*rec);
  }
  AdaptationOptions adapt;
  adapt.min_epoch_queries = 1;
  AdaptationController& controller = advisor.StartAutoAdapt(adapt);
  RunWorkload(db, gen.Generate(static_cast<size_t>(queries) / 4 + 1));
  controller.Tick();
  advisor.StopAutoAdapt();
  advisor.StopRecording();

  switch (mode) {
    case Mode::kText:
      std::fputs(db.metrics().ExportText().c_str(), stdout);
      break;
    case Mode::kJson:
      std::fputs(db.metrics().ExportJson().c_str(), stdout);
      std::fputc('\n', stdout);
      break;
    case Mode::kSlowlog:
      std::fputs(db.slowlog().ToJsonLines().c_str(), stdout);
      break;
    case Mode::kReport: {
      TelemetryReport report = db.TelemetrySnapshot();
      std::fputs(report.ToString().c_str(), stdout);
      if (!telemetry::kCompiledIn) {
        std::puts("(built with HSDB_TELEMETRY=OFF)");
      }
      break;
    }
  }
  return 0;
}
