#!/usr/bin/env python3
"""Metric-name lint: every MetricsRegistry call site follows the naming rules.

Scans src/ for GetCounter/GetGauge/GetHistogram call sites and enforces:

  * every metric name starts with ``hsdb_``
  * counters end in ``_total``
  * histograms end in ``_ms`` or ``_bytes`` (unit suffix), except the
    documented dimensionless ones below
  * gauges do NOT end in ``_total`` (that suffix promises a counter)

Exits non-zero listing each violation, so metric-name drift fails CI the
moment it is introduced rather than when a dashboard query breaks.

Usage: check_metric_names.py [SRC_DIR]   (default: <repo>/src)
"""

import pathlib
import re
import sys

# Histograms whose sample value is a dimensionless count or ratio, where a
# unit suffix would be wrong. Add here ONLY with a comment saying what the
# sample is.
ALLOWED_UNITLESS_HISTOGRAMS = {
    "hsdb_batch_width",            # queries per shared-scan batch
    "hsdb_server_batch_width",     # queries per drained server batch
    "hsdb_cost_abs_rel_error",     # |predicted-observed|/observed ratio
    "hsdb_migration_cost_abs_rel_error",  # same ratio, migration stmts
}

CALL_RE = re.compile(r'Get(Counter|Gauge|Histogram)\(\s*"([^"]+)"')


def lint_file(path: pathlib.Path):
    violations = []
    text = path.read_text(encoding="utf-8", errors="replace")
    for match in CALL_RE.finditer(text):
        kind, name = match.group(1), match.group(2)
        line = text.count("\n", 0, match.start()) + 1
        where = f"{path}:{line}"
        if not name.startswith("hsdb_"):
            violations.append(f"{where}: {kind} '{name}' missing hsdb_ prefix")
        if kind == "Counter" and not name.endswith("_total"):
            violations.append(
                f"{where}: Counter '{name}' must end in _total")
        if kind == "Gauge" and name.endswith("_total"):
            violations.append(
                f"{where}: Gauge '{name}' must not end in _total "
                "(suffix promises a counter)")
        if (kind == "Histogram"
                and not name.endswith(("_ms", "_bytes"))
                and name not in ALLOWED_UNITLESS_HISTOGRAMS):
            violations.append(
                f"{where}: Histogram '{name}' must end in _ms/_bytes "
                "(or be listed in ALLOWED_UNITLESS_HISTOGRAMS with a "
                "comment)")
    return violations


def main():
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        src = pathlib.Path(sys.argv[1])
    else:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if not src.is_dir():
        print(f"source directory not found: {src}", file=sys.stderr)
        return 2
    violations = []
    checked = 0
    for path in sorted(src.rglob("*.cc")) + sorted(src.rglob("*.h")):
        checked += 1
        violations.extend(lint_file(path))
    if violations:
        for v in violations:
            print(v)
        print(f"\n{len(violations)} metric-name violation(s)")
        return 1
    print(f"metric names OK ({checked} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
