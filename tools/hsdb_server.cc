// hsdb_server: serve a demo hybrid-store database over the line protocol.
// Loads the synthetic evaluation table ("events": id, kf* keyfigures, f*
// filter and g* group-by attributes), wires a WorkloadRecorder into the
// live request stream, and listens on 127.0.0.1 until stdin closes or a
// "quit" line is typed. Point tools/hsdb_client (or netcat) at it:
//
//   $ ./build/hsdb_server --port 7878 --rows 100000 &
//   $ ./build/hsdb_client 127.0.0.1 7878
//   > count events where f0<100
//   > sum events kf0 where g0=3
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "server/http_endpoint.h"
#include "server/server.h"
#include "workload/recorder.h"
#include "workload/synthetic.h"

using namespace hsdb;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--http-port H] [--rows N] [--threads D] "
               "[--serve-seconds S] [--slowlog-ms T]\n"
               "  --port P           listen port (default 0 = ephemeral)\n"
               "  --http-port H      introspection HTTP port "
               "(default: disabled; 0 = ephemeral)\n"
               "  --rows N           synthetic rows to load (default 100000)\n"
               "  --threads D        scan parallelism (default HSDB_THREADS)\n"
               "  --serve-seconds S  exit after S seconds instead of waiting "
               "on stdin (for CI backgrounding)\n"
               "  --slowlog-ms T     slow-query log threshold in ms "
               "(default 25)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int http_port = -1;  // -1 = endpoint disabled
  size_t rows = 100'000;
  int threads = 0;
  double serve_seconds = -1.0;  // <0 = serve until stdin closes
  double slowlog_ms = 25.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--http-port") == 0 && i + 1 < argc) {
      http_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve-seconds") == 0 && i + 1 < argc) {
      serve_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--slowlog-ms") == 0 && i + 1 < argc) {
      slowlog_ms = std::atof(argv[++i]);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  Database::Options options;
  options.num_threads = threads;
  options.slowlog_threshold_ms = slowlog_ms;
  Database db(options);
  SyntheticTableSpec spec;
  spec.name = "events";
  HSDB_CHECK(db.CreateTable(spec.name, spec.MakeSchema(),
                            TableLayout::SingleStore(StoreType::kColumn))
                 .ok());
  HSDB_CHECK(
      PopulateSynthetic(db.catalog().GetTable(spec.name), spec, rows).ok());
  db.catalog().UpdateAllStatistics();

  // Every served query (shared-scan and delegated alike) lands in the
  // recorder, so an advisor run over this database sees the real traffic.
  WorkloadRecorder recorder(&db.catalog());
  db.set_observer(&recorder);

  server::SocketServer::Options server_options;
  server_options.port = static_cast<uint16_t>(port);
  server::SocketServer server(&db, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  server::HttpEndpoint::Options http_options;
  http_options.port =
      http_port > 0 ? static_cast<uint16_t>(http_port) : uint16_t{0};
  server::HttpEndpoint endpoint(&db, http_options);
  endpoint.set_server(&server);
  if (http_port >= 0) {
    Status http_started = endpoint.Start();
    if (!http_started.ok()) {
      std::fprintf(stderr, "http start failed: %s\n",
                   http_started.ToString().c_str());
      server.Stop();
      return 1;
    }
  }

  std::printf("hsdb_server listening on 127.0.0.1:%u (%zu rows, dop %d)\n",
              server.port(), rows, db.num_threads());
  if (http_port >= 0) {
    std::printf("http introspection on 127.0.0.1:%u (/metrics /status "
                "/slowlog)\n",
                endpoint.port());
  }
  if (serve_seconds >= 0) {
    std::printf("serving for %.1f seconds\n", serve_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(serve_seconds));
  } else {
    std::printf("type 'quit' (or close stdin) to stop\n");
    std::fflush(stdout);
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line == "quit") break;
    }
  }
  endpoint.Stop();
  server.Stop();
  TelemetryReport report = db.TelemetrySnapshot();
  std::fputs(report.ToString().c_str(), stdout);
  return 0;
}
