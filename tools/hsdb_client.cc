// hsdb_client: interactive line-protocol client for hsdb_server.
//
//   $ ./build/hsdb_client 127.0.0.1 7878
//   > tables
//   events
//   > count events where f0<100
//   9963
//
// Reads request lines from stdin, prints each reply's payload lines (or
// "err: <message>") to stdout. Exits on EOF, "quit", or a transport error.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/client.h"

using namespace hsdb;

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <host> <port>\n", argv[0]);
    return 2;
  }
  server::Client client;
  Status connected =
      client.Connect(argv[1], static_cast<uint16_t>(std::atoi(argv[2])));
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.ToString().c_str());
    return 1;
  }

  bool tty = isatty(0);
  std::string line;
  while ((!tty || (std::fputs("> ", stdout), std::fflush(stdout), true)) &&
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    Result<server::Reply> reply = client.RoundTrip(line);
    if (!reply.ok()) {
      std::fprintf(stderr, "transport error: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    if (!reply->ok) {
      std::printf("err: %s\n", reply->error.c_str());
    } else {
      for (const std::string& payload : reply->lines) {
        std::printf("%s\n", payload.c_str());
      }
    }
    if (line == "quit") break;
  }
  return 0;
}
