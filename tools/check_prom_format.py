#!/usr/bin/env python3
"""Validate Prometheus text exposition format 0.0.4 read from stdin.

Checks what a scraper actually depends on:

  * every sample belongs to a family announced by # HELP and # TYPE lines
  * no duplicate series (same name + label set twice)
  * sample values parse as floats (or +Inf/-Inf/NaN)
  * histogram families are complete: _bucket series with an le label,
    cumulative bucket counts monotonically non-decreasing, a final
    le="+Inf" bucket whose count equals the family's _count sample,
    plus _sum and _count samples

Exit 0 with a summary on success; exit 1 listing each problem otherwise.

Usage: some_exporter | check_prom_format.py
"""

import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+\d+)?$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(raw):
    if raw in ("+Inf", "Inf"):
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    return float(raw)


def main():
    text = sys.stdin.read()
    problems = []
    helped = set()
    typed = {}
    seen_series = set()
    # (family, frozenset(labels minus le)) -> list of (le, count)
    buckets = defaultdict(list)
    counts = {}
    sums = set()
    samples = 0

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4 or not parts[3].strip():
                problems.append(f"line {lineno}: HELP without text: {line!r}")
            if len(parts) >= 3:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        m = SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        samples += 1
        name, labels_raw, value_raw = m.group(1), m.group(2) or "", m.group(3)
        labels = dict(LABEL_RE.findall(labels_raw))
        series_key = (name, frozenset(labels.items()))
        if series_key in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {name}{labels_raw}")
        seen_series.add(series_key)
        try:
            value = parse_value(value_raw)
        except ValueError:
            problems.append(
                f"line {lineno}: bad sample value {value_raw!r} for {name}")
            continue
        family = base_family(name)
        if family not in helped:
            problems.append(f"line {lineno}: sample {name} has no # HELP")
        if family not in typed:
            problems.append(f"line {lineno}: sample {name} has no # TYPE")
        if typed.get(family) == "histogram":
            group = frozenset(kv for kv in labels.items() if kv[0] != "le")
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: {name} bucket without le label")
                else:
                    buckets[(family, group)].append(
                        (parse_value(labels["le"]), value, lineno))
            elif name.endswith("_count"):
                counts[(family, group)] = (value, lineno)
            elif name.endswith("_sum"):
                sums.add((family, group))

    for (family, group), entries in sorted(
            buckets.items(), key=lambda kv: str(kv[0])):
        entries.sort(key=lambda e: e[0])
        prev = None
        for le, count, lineno in entries:
            if prev is not None and count < prev:
                problems.append(
                    f"line {lineno}: {family} bucket le={le} count {count} "
                    f"below previous bucket's {prev} (not cumulative)")
            prev = count
        if not entries or entries[-1][0] != float("inf"):
            problems.append(f"{family}: histogram missing le=\"+Inf\" bucket")
        elif (family, group) in counts:
            inf_count = entries[-1][1]
            total, lineno = counts[(family, group)]
            if inf_count != total:
                problems.append(
                    f"line {lineno}: {family}_count {total} != le=+Inf "
                    f"bucket {inf_count}")
        if (family, group) not in counts:
            problems.append(f"{family}: histogram missing _count sample")
        if (family, group) not in sums:
            problems.append(f"{family}: histogram missing _sum sample")

    if samples == 0:
        problems.append("no samples found on stdin")

    if problems:
        for p in problems:
            print(p)
        print(f"\n{len(problems)} format problem(s) in {samples} samples")
        return 1
    print(f"prometheus format OK ({samples} samples, "
          f"{len(typed)} families, {len(buckets)} histogram series groups)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
