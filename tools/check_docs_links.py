#!/usr/bin/env python3
"""Docs link check: fails when README or docs/ reference a missing file or
a nonexistent bench/example target.

Checks, over README.md and every docs/*.md:
  1. Markdown links `[text](path)` whose path is repo-relative (not a URL
     or pure anchor) must resolve to an existing file or directory,
     relative to the markdown file's own location.
  2. Runnable-target mentions `./build/<name>` (and bare bench/example
     target names in backticks) must correspond to a source file:
     example_<x> -> examples/<x>.cpp, everything else -> bench/<name>.cc.

Run from anywhere: paths resolve against the repository root (the parent
of this script's directory). Exit code 0 = clean, 1 = broken references.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
TARGET_RE = re.compile(
    r"(?:\./)?build/((?:example_|fig|micro_|ablation_)[A-Za-z0-9_]+)")
BARE_TARGET_RE = re.compile(
    r"`((?:fig[0-9a-z_]+|micro_[a-z_]+|ablation_[a-z_]+|example_[a-z_]+))`")


def target_source(name):
    """Source file a build-target name must correspond to."""
    if name.startswith("example_"):
        return REPO / "examples" / (name[len("example_"):] + ".cpp")
    return REPO / "bench" / (name + ".cc")


def check_file(md_path):
    problems = []
    text = md_path.read_text(encoding="utf-8")

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md_path.parent / path).resolve()
        if not resolved.exists():
            problems.append(f"{md_path.relative_to(REPO)}: broken link "
                            f"'{target}' (no file {path})")

    names = set(TARGET_RE.findall(text)) | set(BARE_TARGET_RE.findall(text))
    for name in sorted(names):
        src = target_source(name)
        if not src.exists():
            problems.append(f"{md_path.relative_to(REPO)}: references "
                            f"target '{name}' but {src.relative_to(REPO)} "
                            f"does not exist")
    return problems


def main():
    md_files = [REPO / "README.md"]
    md_files += sorted((REPO / "docs").glob("*.md"))
    missing = [p for p in md_files if not p.exists()]
    if missing:
        for p in missing:
            print(f"ERROR: expected doc {p.relative_to(REPO)} is missing")
        return 1

    problems = []
    for md in md_files:
        problems.extend(check_file(md))

    if problems:
        print(f"FAIL: {len(problems)} broken doc reference(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"OK: {len(md_files)} docs checked, all links and bench/example "
          f"targets resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
