// Microbenchmarks (google-benchmark) of the store asymmetries the advisor's
// cost model is built on: scans/aggregates, inserts, updates, point lookups
// per store. Run in Release mode for meaningful numbers.
#include <benchmark/benchmark.h>

#include "executor/database.h"
#include "workload/synthetic.h"

namespace hsdb {
namespace {

constexpr size_t kRows = 100'000;

SyntheticTableSpec Spec() {
  SyntheticTableSpec spec;
  spec.name = "t";
  return spec;
}

std::unique_ptr<Database> MakeDb(StoreType store) {
  auto db = std::make_unique<Database>();
  SyntheticTableSpec spec = Spec();
  HSDB_CHECK(db->CreateTable("t", spec.MakeSchema(),
                             TableLayout::SingleStore(store))
                 .ok());
  HSDB_CHECK(PopulateSynthetic(db->catalog().GetTable("t"), spec, kRows).ok());
  return db;
}

void BM_Aggregate(benchmark::State& state) {
  auto db = MakeDb(static_cast<StoreType>(state.range(0)));
  SyntheticTableSpec spec = Spec();
  AggregationQuery q;
  q.tables = {"t"};
  q.aggregates = {{AggFn::kSum, {spec.keyfigure(0), 0}}};
  for (auto _ : state) {
    auto r = db->Execute(Query(q));
    benchmark::DoNotOptimize(r->aggregates[0]);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_Aggregate)->Arg(0)->Arg(1)->ArgName("store");

void BM_GroupedAggregate(benchmark::State& state) {
  auto db = MakeDb(static_cast<StoreType>(state.range(0)));
  SyntheticTableSpec spec = Spec();
  AggregationQuery q;
  q.tables = {"t"};
  q.aggregates = {{AggFn::kSum, {spec.keyfigure(0), 0}}};
  q.group_by = {{spec.group(0), 0}};
  for (auto _ : state) {
    auto r = db->Execute(Query(q));
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_GroupedAggregate)->Arg(0)->Arg(1)->ArgName("store");

void BM_Insert(benchmark::State& state) {
  auto db = MakeDb(static_cast<StoreType>(state.range(0)));
  SyntheticTableSpec spec = Spec();
  int64_t next = kRows;
  for (auto _ : state) {
    auto r = db->Execute(Query(InsertQuery{"t", SyntheticRow(spec, next++)}));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Insert)->Arg(0)->Arg(1)->ArgName("store");

void BM_PointUpdate(benchmark::State& state) {
  auto db = MakeDb(static_cast<StoreType>(state.range(0)));
  SyntheticTableSpec spec = Spec();
  Rng rng(5);
  for (auto _ : state) {
    UpdateQuery u;
    u.table = "t";
    u.predicate = {{{0, 0},
                    ValueRange::Eq(Value(rng.UniformInt(0, kRows - 1)))}};
    u.set_columns = {spec.keyfigure(0), spec.keyfigure(1)};
    u.set_values = {Value(1.0), Value(2.0)};
    auto r = db->Execute(Query(u));
    benchmark::DoNotOptimize(r->affected_rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointUpdate)->Arg(0)->Arg(1)->ArgName("store");

void BM_PointSelect(benchmark::State& state) {
  auto db = MakeDb(static_cast<StoreType>(state.range(0)));
  SyntheticTableSpec spec = Spec();
  SelectQuery q;
  q.table = "t";
  for (ColumnId c = 0; c < spec.num_columns(); ++c) {
    q.select_columns.push_back(c);
  }
  Rng rng(6);
  for (auto _ : state) {
    q.predicate = {{{0, 0},
                    ValueRange::Eq(Value(rng.UniformInt(0, kRows - 1)))}};
    auto r = db->Execute(Query(q));
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointSelect)->Arg(0)->Arg(1)->ArgName("store");

void BM_RangeSelect(benchmark::State& state) {
  auto db = MakeDb(static_cast<StoreType>(state.range(0)));
  SyntheticTableSpec spec = Spec();
  SelectQuery q;
  q.table = "t";
  q.select_columns = {0, spec.keyfigure(0)};
  // ~1% selectivity range on a filter attribute.
  q.predicate = {{{spec.filter(0), 0},
                  ValueRange::Between(Value(int32_t{100}),
                                      Value(int32_t{109}))}};
  for (auto _ : state) {
    auto r = db->Execute(Query(q));
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_RangeSelect)->Arg(0)->Arg(1)->ArgName("store");

void BM_DeltaMerge(benchmark::State& state) {
  SyntheticTableSpec spec = Spec();
  for (auto _ : state) {
    state.PauseTiming();
    ColumnTable::Options opts;
    opts.auto_merge = false;
    auto table = ColumnTable::Create(spec.MakeSchema(), opts);
    for (int64_t i = 0; i < static_cast<int64_t>(state.range(0)); ++i) {
      HSDB_CHECK(table->Insert(SyntheticRow(spec, i)).ok());
    }
    state.ResumeTiming();
    table->MergeDelta();
    benchmark::DoNotOptimize(table->main_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeltaMerge)->Arg(10'000)->Arg(50'000)->ArgName("rows");

}  // namespace
}  // namespace hsdb

BENCHMARK_MAIN();
