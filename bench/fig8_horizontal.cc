// Figure 8: runtime of a fixed workload under different horizontal
// partitionings. Paper setup: mixed 500-query workload with 5% OLAP and
// updates addressing the top 10% of the data; vary the fraction of rows in
// the row-store partition from 0% to 20%. Expected shape: minimum exactly at
// the 10% the advisor recommends, (roughly) linear growth on both sides.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/partition_advisor.h"
#include "workload/generator.h"
#include "workload/recorder.h"
#include "workload/runner.h"

namespace hsdb {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure 8: horizontal partitioning sweep",
      "30-attribute table, 10M tuples (scaled); 500 queries, 5% OLAP, "
      "updates on the top 10% of keys; RS partition grows 0%..20%",
      "runtime minimal at the recommended 10% row-store partition");

  CostModel model(bench::CalibratedParams());
  SyntheticTableSpec spec;
  spec.name = "t";
  const size_t rows = bench::ScaledRows(10e6);
  const size_t num_queries = bench::ScaledQueries(500, 200);

  WorkloadOptions opts;
  opts.olap_fraction = 0.05;
  opts.hot_key_fraction = 0.10;  // updates address the top 10% of the data
  opts.insert_weight = 0.0;      // isolate the update-locality effect
  opts.update_weight = 0.7;
  opts.point_select_weight = 0.3;
  opts.wide_update_probability = 0.5;
  opts.seed = 77;

  // Ask the advisor which partitioning it would recommend.
  double recommended_fraction = -1.0;
  {
    Database db;
    HSDB_CHECK(db.CreateTable("t", spec.MakeSchema(),
                              TableLayout::SingleStore(StoreType::kColumn))
                   .ok());
    HSDB_CHECK(
        PopulateSynthetic(db.catalog().GetTable("t"), spec, rows).ok());
    db.catalog().UpdateAllStatistics();
    SyntheticWorkloadGenerator gen(spec, rows, opts);
    std::vector<Query> workload = gen.Generate(num_queries);
    WorkloadStatistics stats;
    for (const Query& q : workload) stats.Record(q, db.catalog());
    PartitionAdvisor advisor(&model, &db.catalog());
    PartitionAdvisorResult rec = advisor.Recommend(
        ToWeighted(workload), stats, {{"t", StoreType::kColumn}});
    const LayoutContext& ctx = rec.layouts.at("t");
    if (ctx.layout.horizontal.has_value()) {
      recommended_fraction =
          1.0 - ctx.layout.horizontal->boundary / static_cast<double>(rows);
      std::printf("advisor recommendation: %s (RS fraction %.1f%%)\n",
                  ctx.layout.ToString().c_str(),
                  100.0 * recommended_fraction);
    } else {
      std::printf("advisor recommendation: %s\n",
                  ctx.layout.ToString().c_str());
    }
  }
  bench::PrintRule();

  std::printf("%16s %14s\n", "RS fraction", "runtime (s)");
  double best_runtime = 0.0;
  double best_fraction = 0.0;
  bool first = true;
  for (double fraction :
       {0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.20}) {
    TableLayout layout;
    layout.base_store = StoreType::kColumn;
    if (fraction > 0.0) {
      layout.horizontal = HorizontalSpec{
          spec.id_column(), static_cast<double>(rows) * (1.0 - fraction),
          StoreType::kRow};
    }
    // Median of three runs: the per-query costs are small at reduced scale
    // and a single run is noise-dominated.
    std::vector<double> samples;
    for (int rep = 0; rep < 3; ++rep) {
      Database db;
      HSDB_CHECK(db.CreateTable("t", spec.MakeSchema(), layout).ok());
      HSDB_CHECK(
          PopulateSynthetic(db.catalog().GetTable("t"), spec, rows).ok());
      db.catalog().UpdateAllStatistics();
      SyntheticWorkloadGenerator gen(spec, rows, opts);
      WorkloadRunResult run = RunWorkload(db, gen.Generate(num_queries));
      HSDB_CHECK(run.failed == 0);
      samples.push_back(run.total_ms);
    }
    std::sort(samples.begin(), samples.end());
    double total_ms = samples[1];
    std::printf("%15.1f%% %14.3f\n", fraction * 100, total_ms / 1000.0);
    std::fflush(stdout);
    if (first || total_ms < best_runtime) {
      best_runtime = total_ms;
      best_fraction = fraction;
      first = false;
    }
  }
  bench::PrintRule();
  std::printf("measured optimum at RS fraction %.1f%%; advisor recommended "
              "%.1f%%\n",
              best_fraction * 100,
              recommended_fraction < 0 ? 0.0 : recommended_fraction * 100);
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
