#include "bench_util.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/stopwatch.h"
#include "core/probe_runner.h"

namespace hsdb {
namespace bench {

namespace {

/// Calibration-cache location: HSDB_CALIBRATION_CACHE overrides; the
/// default is relative to the invoking directory, which the documented
/// workflow (run benches from build/) keeps out of the source tree — the
/// file is gitignored either way. See docs/ARCHITECTURE.md, "Calibration
/// cache lifecycle".
const char* CachePath() {
  const char* env = std::getenv("HSDB_CALIBRATION_CACHE");
  return env != nullptr && env[0] != '\0' ? env : "hsdb_calibration.cache";
}

}  // namespace

double ScaleFactor() {
  const char* env = std::getenv("HSDB_BENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 0.05;
}

size_t ScaledRows(double paper_rows, size_t min_rows) {
  auto rows = static_cast<size_t>(paper_rows * ScaleFactor());
  return rows < min_rows ? min_rows : rows;
}

size_t ScaledQueries(double paper_queries, size_t min_queries) {
  // Queries scale more gently than data (sqrt) so small-scale runs still
  // exercise a meaningful mix.
  double scaled = paper_queries * std::sqrt(ScaleFactor() / 0.05) * 0.4;
  auto n = static_cast<size_t>(scaled);
  return n < min_queries ? min_queries : n;
}

CostModelParams CalibratedParams() {
  const char* recal = std::getenv("HSDB_BENCH_RECALIBRATE");
  if (recal == nullptr || recal[0] == '0') {
    std::ifstream in(CachePath());
    if (in.good()) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      Result<CostModelParams> params =
          CostModelParams::Deserialize(buffer.str());
      if (params.ok()) {
        std::printf("[calibration] loaded cached model from %s\n",
                    CachePath());
        return *params;
      }
      std::printf("[calibration] cache unreadable, recalibrating\n");
    }
  }
  std::printf(
      "[calibration] running probe suite (cached afterwards in %s)...\n",
      CachePath());
  std::fflush(stdout);
  Stopwatch sw;
  EngineProbeRunner runner;
  CalibrationOptions options;
  CalibrationReport report = Calibrate(runner, options);
  std::printf("[calibration] done in %.1f s, mean r2 = %.4f\n",
              sw.ElapsedMs() / 1000.0, report.mean_r_squared);
  std::ofstream out(CachePath());
  out << report.params.Serialize();
  return report.params;
}

void PrintBanner(const std::string& figure, const std::string& setup,
                 const std::string& paper_shape) {
  PrintRule();
  std::printf("%s\n", figure.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("paper shape: %s\n", paper_shape.c_str());
  std::printf("scale factor: %.3f (HSDB_BENCH_SCALE)\n", ScaleFactor());
  PrintRule();
  std::fflush(stdout);
}

void PrintRule() {
  std::printf(
      "----------------------------------------------------------------------"
      "--\n");
}

}  // namespace bench
}  // namespace hsdb
