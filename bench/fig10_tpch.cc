// Figure 10: combination and comparison on a TPC-H-like scenario.
// Paper setup: TPC-H data at SF 1, a 5000-query mixed workload with ~1%
// OLAP; compare (i) all tables in the row store, (ii) all in the column
// store, (iii) the advisor's table-level recommendation, (iv) the advisor's
// partitioned recommendation. Expected shape: single-store layouts are the
// most expensive; table-level clearly cheaper; partitioning cheaper again
// (paper: ~-40% vs table-level, ~-65% vs CS-only).
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/advisor.h"
#include "tpch/workload.h"
#include "workload/runner.h"

namespace hsdb {
namespace {

using tpch::DbgenOptions;
using tpch::LoadTpch;
using tpch::TpchWorkloadGenerator;
using tpch::TpchWorkloadOptions;

double RunConfig(const char* label,
                 const std::map<std::string, TableLayout>& layouts,
                 double scale_factor, const TpchWorkloadOptions& wl_opts,
                 size_t num_queries) {
  Database db;
  DbgenOptions opts;
  opts.scale_factor = scale_factor;
  opts.default_layout = TableLayout::SingleStore(StoreType::kRow);
  opts.layouts = layouts;
  Result<tpch::DbgenStats> stats = LoadTpch(db, opts);
  HSDB_CHECK_MSG(stats.ok(), stats.status().ToString().c_str());
  // Row-store pieces of the big tables get a sorted index on the key used
  // by the workload's non-point updates, as a tuned deployment would.
  HSDB_CHECK(db.catalog()
                 .GetTable("lineitem")
                 ->CreateSortedIndex(tpch::col::kLOrderKey)
                 .ok());
  HSDB_CHECK(db.catalog()
                 .GetTable("partsupp")
                 ->CreateSortedIndex(tpch::col::kPsPartKey)
                 .ok());

  TpchWorkloadGenerator gen(db, wl_opts);
  std::vector<Query> workload = gen.Generate(num_queries);
  WorkloadRunResult run = RunWorkload(db, workload);
  HSDB_CHECK(run.failed == 0);
  std::printf("%-14s %12.3f s   (%zu queries, %zu OLAP)\n", label,
              run.total_ms / 1000.0, run.queries, run.olap_queries);
  std::fflush(stdout);
  return run.total_ms;
}

int Run() {
  bench::PrintBanner(
      "Figure 10: decisions on different levels, TPC-H-like scenario",
      "TPC-H SF 1 (scaled), 5000-query mixed workload, ~1% OLAP",
      "RS-only and CS-only most expensive; table-level clearly cheaper; "
      "partitioned cheapest (paper: -40% vs table, -65% vs CS-only)");

  const double sf = bench::ScaleFactor();
  const size_t num_queries = bench::ScaledQueries(5000, 500);
  TpchWorkloadOptions wl_opts;
  // Preserve the paper's OLAP-to-OLTP *cost balance* at reduced scale: an
  // OLAP query's cost shrinks with the data (factor sf) while an OLTP op
  // does not, so the OLAP share of the query count must grow accordingly.
  // At sf = 1 this reduces to the paper's nominal 1%.
  {
    double r = (0.01 / 0.99) / sf;
    wl_opts.olap_fraction = r / (1.0 + r);
  }
  std::printf("scale factor %.3f, %zu queries, effective OLAP fraction "
              "%.3f (balance-preserving for nominal 1%%)\n",
              sf, num_queries, wl_opts.olap_fraction);
  bench::PrintRule();

  // Ask the advisor for table-level and partitioned recommendations from a
  // reference load + recorded workload sample.
  std::map<std::string, TableLayout> table_level;
  std::map<std::string, TableLayout> partitioned;
  {
    Database db;
    DbgenOptions opts;
    opts.scale_factor = sf;
    opts.default_layout = TableLayout::SingleStore(StoreType::kRow);
    HSDB_CHECK(LoadTpch(db, opts).ok());
    // The advisor must see the same physical tuning the measured
    // configurations get (row-store indexes on the non-point update keys),
    // or it will price row-store updates as scans.
    HSDB_CHECK(db.catalog()
                   .GetTable("lineitem")
                   ->CreateSortedIndex(tpch::col::kLOrderKey)
                   .ok());
    HSDB_CHECK(db.catalog()
                   .GetTable("partsupp")
                   ->CreateSortedIndex(tpch::col::kPsPartKey)
                   .ok());
    TpchWorkloadGenerator gen(db, wl_opts);
    std::vector<Query> workload = gen.Generate(num_queries);

    AdvisorOptions adv_opts;
    StorageAdvisor advisor(&db, adv_opts);
    advisor.SetCostModelParams(bench::CalibratedParams());
    Result<Recommendation> rec = advisor.RecommendOffline(workload);
    HSDB_CHECK_MSG(rec.ok(), rec.status().ToString().c_str());
    std::printf("%s", rec->Summary().c_str());
    bench::PrintRule();
    for (const auto& [name, store] : rec->table_level_assignment) {
      table_level.emplace(name, TableLayout::SingleStore(store));
    }
    for (const auto& [name, ctx] : rec->layouts) {
      partitioned.emplace(name, ctx.layout);
    }
  }

  std::map<std::string, TableLayout> rs_only;
  std::map<std::string, TableLayout> cs_only;
  for (const std::string& name : tpch::TableNames()) {
    rs_only.emplace(name, TableLayout::SingleStore(StoreType::kRow));
    cs_only.emplace(name, TableLayout::SingleStore(StoreType::kColumn));
  }

  double t_rs = RunConfig("RS only", rs_only, sf, wl_opts, num_queries);
  double t_cs = RunConfig("CS only", cs_only, sf, wl_opts, num_queries);
  double t_table =
      RunConfig("Table", table_level, sf, wl_opts, num_queries);
  double t_part =
      RunConfig("Partitioned", partitioned, sf, wl_opts, num_queries);

  bench::PrintRule();
  std::printf("Partitioned vs Table:   %+.1f%%\n",
              100.0 * (t_part - t_table) / t_table);
  std::printf("Partitioned vs CS-only: %+.1f%%\n",
              100.0 * (t_part - t_cs) / t_cs);
  std::printf("Partitioned vs RS-only: %+.1f%%\n",
              100.0 * (t_part - t_rs) / t_rs);
  std::printf("Table vs best single store: %+.1f%%\n",
              100.0 * (t_table - std::min(t_rs, t_cs)) /
                  std::min(t_rs, t_cs));
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
