// Figure 6(a): accuracy of the runtime estimation vs. data scale.
// Paper setup: a constant aggregation query against the 30-attribute table
// at 2M..20M tuples; plot estimated vs. measured runtime for both stores.
// Expected shape: both stores linear in the row count, row store steeper,
// estimates close to measurements (especially for the column store).
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "catalog/statistics.h"
#include "common/stopwatch.h"
#include "core/workload_cost.h"
#include "workload/generator.h"

namespace hsdb {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure 6(a): estimation accuracy over data scale",
      "30-attribute table, constant SUM aggregation, 2M..20M tuples "
      "(scaled)",
      "linear growth in both stores; RS steeper; estimate tracks measured");

  CostModel model(bench::CalibratedParams());
  SyntheticTableSpec spec;
  spec.name = "t";

  const std::vector<double> paper_tuples = {2e6, 6e6, 10e6, 15e6, 20e6};
  std::printf("%12s %14s %14s %14s %14s\n", "tuples", "RS est (ms)",
              "RS meas (ms)", "CS est (ms)", "CS meas (ms)");

  std::vector<double> rs_est, rs_meas, cs_est, cs_meas;
  for (double paper_n : paper_tuples) {
    size_t rows = bench::ScaledRows(paper_n);
    double est[2], meas[2];
    for (StoreType store : {StoreType::kRow, StoreType::kColumn}) {
      Database db;
      HSDB_CHECK(db.CreateTable("t", spec.MakeSchema(),
                                TableLayout::SingleStore(store))
                     .ok());
      HSDB_CHECK(
          PopulateSynthetic(db.catalog().GetTable("t"), spec, rows).ok());
      db.catalog().UpdateAllStatistics();

      // The paper's "constant aggregation query": SUM over one keyfigure.
      AggregationQuery q;
      q.tables = {"t"};
      q.aggregates = {{AggFn::kSum, {spec.keyfigure(0), 0}}};

      WorkloadCostEstimator estimator(&model, &db.catalog());
      est[static_cast<int>(store)] =
          estimator.QueryCost(Query(q), [&](const std::string&) {
            return LayoutContext::SingleStore(store);
          });
      meas[static_cast<int>(store)] =
          MedianTimeMs([&] { HSDB_CHECK(db.Execute(Query(q)).ok()); }, 5);
    }
    std::printf("%12zu %14.3f %14.3f %14.3f %14.3f\n", rows, est[0], meas[0],
                est[1], meas[1]);
    std::fflush(stdout);
    rs_est.push_back(est[0]);
    rs_meas.push_back(meas[0]);
    cs_est.push_back(est[1]);
    cs_meas.push_back(meas[1]);
  }

  bench::PrintRule();
  std::printf("RS estimation error (MAPE): %5.1f%%\n",
              100.0 * MeanAbsolutePercentageError(rs_meas, rs_est));
  std::printf("CS estimation error (MAPE): %5.1f%%\n",
              100.0 * MeanAbsolutePercentageError(cs_meas, cs_est));
  std::printf("RS/CS measured slope ratio at max scale: %.2fx\n",
              rs_meas.back() / std::max(1e-9, cs_meas.back()));
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
