// Shared harness utilities for the per-figure benchmarks.
//
// Scale: every experiment reproduces the paper's setup at a configurable
// scale (HSDB_BENCH_SCALE, default 0.05 -> the paper's 10M-row table becomes
// 500k rows). The *shape* of every figure — who wins, where the crossover
// falls, where the partitioning optimum sits — is scale-invariant; absolute
// milliseconds are not comparable to the paper's testbed.
//
// Calibration: the cost model is calibrated once per machine and cached in
// hsdb_calibration.cache relative to the invoking directory — run benches
// from build/ so the cache lands there (it is gitignored regardless).
// HSDB_CALIBRATION_CACHE overrides the path; delete the file or set
// HSDB_BENCH_RECALIBRATE=1 to refresh. A serialization-version bump (see
// kSerializationMagic in src/core/cost_model.cc) invalidates stale caches
// automatically.
#ifndef HSDB_BENCH_BENCH_UTIL_H_
#define HSDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/advisor.h"

namespace hsdb {
namespace bench {

/// HSDB_BENCH_SCALE (default 0.05).
double ScaleFactor();

/// paper_rows scaled, floored at `min_rows`.
size_t ScaledRows(double paper_rows, size_t min_rows = 20'000);

/// Number of workload queries, scaled with a floor.
size_t ScaledQueries(double paper_queries, size_t min_queries = 100);

/// Calibrated cost-model parameters (cached across bench binaries).
CostModelParams CalibratedParams();

/// Prints the standard experiment banner.
void PrintBanner(const std::string& figure, const std::string& setup,
                 const std::string& paper_shape);

/// Prints a separator line.
void PrintRule();

}  // namespace bench
}  // namespace hsdb

#endif  // HSDB_BENCH_BENCH_UTIL_H_
