// Figure 6(b): accuracy of the runtime estimation vs. number of aggregates.
// Paper setup: the 30-attribute table at 10M tuples; the aggregation query
// computes 1..5 aggregates. Expected shape: linear growth in the number of
// aggregates for both stores, estimates close to measurements.
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/workload_cost.h"
#include "workload/generator.h"

namespace hsdb {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure 6(b): estimation accuracy over the number of aggregates",
      "30-attribute table, 10M tuples (scaled), 1..5 aggregates",
      "linear in #aggregates for both stores; estimate tracks measured");

  CostModel model(bench::CalibratedParams());
  SyntheticTableSpec spec;
  spec.name = "t";
  const size_t rows = bench::ScaledRows(10e6);

  // Build both stores once.
  Database rs_db, cs_db;
  for (auto* dbp : {&rs_db, &cs_db}) {
    StoreType store = dbp == &rs_db ? StoreType::kRow : StoreType::kColumn;
    HSDB_CHECK(dbp->CreateTable("t", spec.MakeSchema(),
                                TableLayout::SingleStore(store))
                   .ok());
    HSDB_CHECK(
        PopulateSynthetic(dbp->catalog().GetTable("t"), spec, rows).ok());
    dbp->catalog().UpdateAllStatistics();
  }

  std::printf("rows = %zu\n", rows);
  std::printf("%12s %14s %14s %14s %14s\n", "#aggregates", "RS est (ms)",
              "RS meas (ms)", "CS est (ms)", "CS meas (ms)");
  std::vector<double> rs_est, rs_meas, cs_est, cs_meas;
  for (size_t aggs = 1; aggs <= 5; ++aggs) {
    AggregationQuery q;
    q.tables = {"t"};
    static constexpr AggFn kFns[] = {AggFn::kSum, AggFn::kAvg, AggFn::kMin,
                                     AggFn::kMax, AggFn::kSum};
    for (size_t i = 0; i < aggs; ++i) {
      q.aggregates.push_back(
          {kFns[i], {spec.keyfigure(i % spec.num_keyfigures), 0}});
    }
    double est[2], meas[2];
    for (auto* dbp : {&rs_db, &cs_db}) {
      StoreType store = dbp == &rs_db ? StoreType::kRow : StoreType::kColumn;
      WorkloadCostEstimator estimator(&model, &dbp->catalog());
      est[static_cast<int>(store)] =
          estimator.QueryCost(Query(q), [&](const std::string&) {
            return LayoutContext::SingleStore(store);
          });
      meas[static_cast<int>(store)] =
          MedianTimeMs([&] { HSDB_CHECK(dbp->Execute(Query(q)).ok()); }, 5);
    }
    std::printf("%12zu %14.3f %14.3f %14.3f %14.3f\n", aggs, est[0], meas[0],
                est[1], meas[1]);
    std::fflush(stdout);
    rs_est.push_back(est[0]);
    rs_meas.push_back(meas[0]);
    cs_est.push_back(est[1]);
    cs_meas.push_back(meas[1]);
  }
  bench::PrintRule();
  std::printf("RS estimation error (MAPE): %5.1f%%\n",
              100.0 * MeanAbsolutePercentageError(rs_meas, rs_est));
  std::printf("CS estimation error (MAPE): %5.1f%%\n",
              100.0 * MeanAbsolutePercentageError(cs_meas, cs_est));
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
