// Does a layout migration block queries? One synthetic table under a mixed
// point-select / range-aggregate / insert / update client, measured in
// three regimes:
//   idle       no migration running — the latency floor,
//   shadow     Database::MigrateShadow flips the base store column<->row on
//              a background thread (the non-blocking online path),
//   blocking   Database::ApplyLayout performs the same flips (the
//              stop-the-world baseline, writers latched out per rebuild).
// Expected shape: the shadow regime's statement p95 stays within a small
// factor of idle, because concurrent statements only ever wait for the
// cut-over window — whose length is bounded by the replay tail, not by
// table size. The blocking regime's p95 absorbs whole rebuilds. The run
// exits nonzero when the shadow p95 blows past the idle floor, when any
// cut-over window exceeds an absolute bound, or when any flip degraded to
// the blocking fallback (docs/CONCURRENCY.md section 4).
//
// --json PATH writes the idle/shadow p95s and the mean background build
// time in google-benchmark JSON format for CI's perf gate
// (bench/check_regression.py).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "executor/database.h"
#include "workload/synthetic.h"

namespace hsdb {
namespace {

// Shadow p95 may exceed idle p95 by this factor (or the absolute floor,
// whichever is larger — sub-millisecond idle floors make a pure ratio
// hypersensitive to scheduler noise on shared CI runners).
constexpr double kP95Factor = 8.0;
constexpr double kP95FloorMs = 5.0;
// Every observed cut-over window must stay under this, regardless of table
// size: the window covers the replay tail and the pointer swap only.
constexpr double kCutoverBoundMs = 50.0;

struct Timing {
  std::string name;
  double ms = 0.0;
};

/// Minimal google-benchmark-format JSON (see fig_joint_budget.cc).
void WriteJson(const std::string& path, const std::vector<Timing>& timings) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n \"context\": {\"executable\": \"fig_online_migration\"},\n"
               " \"benchmarks\": [\n");
  for (size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"run_name\": \"%s\", "
                 "\"run_type\": \"iteration\", \"iterations\": 1, "
                 "\"real_time\": %.6f, \"cpu_time\": %.6f, "
                 "\"time_unit\": \"ms\"}%s\n",
                 timings[i].name.c_str(), timings[i].name.c_str(),
                 timings[i].ms, timings[i].ms,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, " ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * (samples.size() - 1));
  return samples[idx];
}

/// One client statement from the fixed mix: 35% point select, 20% range
/// aggregate, 25% insert, 20% point update. The DML share is what makes the
/// blocking regime visible — readers are never latched in either mode.
Query MakeStatement(const SyntheticTableSpec& spec, size_t base_rows,
                    Rng* rng, std::atomic<int64_t>* next_id) {
  const int roll = static_cast<int>(rng->UniformInt(0, 99));
  if (roll < 35) {
    SelectQuery q;
    q.table = spec.name;
    q.select_columns = {0, spec.keyfigure(0)};
    int64_t id = rng->UniformInt(0, static_cast<int64_t>(base_rows) - 1);
    q.predicate = {{{0, 0}, ValueRange::Between(Value(id), Value(id))}};
    return q;
  }
  if (roll < 55) {
    AggregationQuery q;
    q.tables = {spec.name};
    q.aggregates = {{AggFn::kCount, {}}, {AggFn::kSum, {spec.keyfigure(0), 0}}};
    q.predicate = {{{spec.filter(0), 0},
                    ValueRange::Between(
                        Value(static_cast<int32_t>(rng->UniformInt(0, 400))),
                        Value(static_cast<int32_t>(700)))}};
    return q;
  }
  if (roll < 80) {
    InsertQuery q;
    q.table = spec.name;
    q.row = SyntheticRow(spec, next_id->fetch_add(1));
    return q;
  }
  UpdateQuery q;
  q.table = spec.name;
  int64_t id = rng->UniformInt(0, static_cast<int64_t>(base_rows) - 1);
  q.predicate = {{{0, 0}, ValueRange::Between(Value(id), Value(id))}};
  q.set_columns = {spec.keyfigure(0)};
  q.set_values = {Value(rng->UniformDouble(0.0, spec.keyfigure_max))};
  return q;
}

struct PhaseResult {
  std::vector<double> latencies_ms;
  int errors = 0;
};

/// Runs the client mix until `stop` flips (minimum kMinStatements), one
/// latency sample per statement.
PhaseResult RunClient(Database* db, const SyntheticTableSpec& spec,
                      size_t base_rows, std::atomic<int64_t>* next_id,
                      const std::atomic<bool>* stop, size_t min_statements,
                      uint64_t seed) {
  PhaseResult out;
  Rng rng(seed);
  while (!stop->load(std::memory_order_acquire) ||
         out.latencies_ms.size() < min_statements) {
    Query q = MakeStatement(spec, base_rows, &rng, next_id);
    Stopwatch sw;
    Result<QueryResult> res = db->Execute(q);
    out.latencies_ms.push_back(sw.ElapsedMs());
    if (!res.ok()) ++out.errors;
  }
  return out;
}

struct MigrationTotals {
  int flips = 0;
  int failures = 0;       // errored, no-op, or fallback_blocking flips
  double cutover_max_ms = 0.0;
  double build_sum_ms = 0.0;
  uint64_t replayed_ops = 0;
};

void Run(const std::string& json_path) {
  const size_t rows = bench::ScaledRows(1e6, 20'000);
  const size_t kMinStatements = 400;
  const int kFlips = 6;

  SyntheticTableSpec spec;
  spec.name = "t";
  spec.num_keyfigures = 4;
  spec.num_filters = 4;
  spec.num_groups = 2;

  bench::PrintBanner(
      "online migration (non-blocking shadow rebuilds)",
      "mixed select/aggregate/insert/update client vs. background "
      "column<->row flips of the same table: MigrateShadow (shadow copy + "
      "op-log replay + epoch swap) against the ApplyLayout stop-the-world "
      "baseline",
      "statement p95 while migrating stays near idle; every cut-over "
      "window is bounded and table-size independent");

  Database::Options options;
  options.migration_chunk_rows = 4096;  // many reader-lock handoffs
  Database db(options);
  HSDB_CHECK(db.CreateTable(spec.name, spec.MakeSchema(),
                            TableLayout::SingleStore(StoreType::kRow))
                 .ok());
  HSDB_CHECK(
      PopulateSynthetic(db.catalog().GetTable(spec.name), spec, rows).ok());
  db.catalog().UpdateAllStatistics();
  std::atomic<int64_t> next_id{static_cast<int64_t>(rows)};

  // Warm-up: fault in both code paths before any timer starts.
  {
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
      (void)db.Execute(MakeStatement(spec, rows, &rng, &next_id));
    }
  }

  // --- Regime 1: idle -----------------------------------------------------
  std::atomic<bool> stop_never{true};  // already "stopped": run the minimum
  PhaseResult idle =
      RunClient(&db, spec, rows, &next_id, &stop_never, kMinStatements, 11);

  // --- Regime 2: shadow migration in the background -----------------------
  MigrationTotals shadow;
  std::atomic<bool> shadow_done{false};
  std::thread shadow_thread([&] {
    for (int i = 0; i < kFlips; ++i) {
      const StoreType next = i % 2 == 0 ? StoreType::kColumn : StoreType::kRow;
      Result<ShadowMigrationStats> m =
          db.MigrateShadow(spec.name, TableLayout::SingleStore(next));
      ++shadow.flips;
      if (!m.ok() || !m.value().rematerialized ||
          m.value().fallback_blocking) {
        ++shadow.failures;
        continue;
      }
      shadow.cutover_max_ms =
          std::max(shadow.cutover_max_ms, m.value().cutover_ms);
      shadow.build_sum_ms += m.value().build_ms;
      shadow.replayed_ops += m.value().replayed_ops;
    }
    shadow_done.store(true, std::memory_order_release);
  });
  PhaseResult migrating =
      RunClient(&db, spec, rows, &next_id, &shadow_done, kMinStatements, 13);
  shadow_thread.join();

  // --- Regime 3: blocking baseline ----------------------------------------
  int blocking_failures = 0;
  std::atomic<bool> blocking_done{false};
  std::thread blocking_thread([&] {
    for (int i = 0; i < kFlips; ++i) {
      const StoreType next = i % 2 == 0 ? StoreType::kColumn : StoreType::kRow;
      Status applied = db.ApplyLayout(spec.name, TableLayout::SingleStore(next));
      if (!applied.ok()) ++blocking_failures;
    }
    blocking_done.store(true, std::memory_order_release);
  });
  PhaseResult blocking =
      RunClient(&db, spec, rows, &next_id, &blocking_done, kMinStatements, 17);
  blocking_thread.join();

  const double p95_idle = Percentile(idle.latencies_ms, 0.95);
  const double p95_shadow = Percentile(migrating.latencies_ms, 0.95);
  const double p95_blocking = Percentile(blocking.latencies_ms, 0.95);
  const double max_idle = Percentile(idle.latencies_ms, 1.0);
  const double max_shadow = Percentile(migrating.latencies_ms, 1.0);
  const double max_blocking = Percentile(blocking.latencies_ms, 1.0);
  const double build_mean_ms =
      shadow.flips > shadow.failures
          ? shadow.build_sum_ms / (shadow.flips - shadow.failures)
          : 0.0;

  std::printf("%zu rows, %d flips per migrating regime, mix 55%% read / "
              "45%% DML\n\n",
              rows, kFlips);
  std::printf("%-10s %10s %10s %10s %8s\n", "regime", "stmts", "p95 ms",
              "max ms", "errors");
  bench::PrintRule();
  std::printf("%-10s %10zu %10.3f %10.3f %8d\n", "idle",
              idle.latencies_ms.size(), p95_idle, max_idle, idle.errors);
  std::printf("%-10s %10zu %10.3f %10.3f %8d\n", "shadow",
              migrating.latencies_ms.size(), p95_shadow, max_shadow,
              migrating.errors);
  std::printf("%-10s %10zu %10.3f %10.3f %8d\n", "blocking",
              blocking.latencies_ms.size(), p95_blocking, max_blocking,
              blocking.errors);
  bench::PrintRule();
  std::printf(
      "shadow flips: %d (%d failed)  build mean %.2f ms  cut-over max "
      "%.3f ms  replayed ops %llu\n",
      shadow.flips, shadow.failures, build_mean_ms, shadow.cutover_max_ms,
      static_cast<unsigned long long>(shadow.replayed_ops));

  // Self-gates: the properties this figure exists to demonstrate.
  bool ok = true;
  const double p95_bound = std::max(kP95Factor * p95_idle, kP95FloorMs);
  if (idle.errors + migrating.errors + blocking.errors > 0 ||
      blocking_failures > 0) {
    std::printf("FAIL: statements or layout flips errored\n");
    ok = false;
  }
  if (shadow.failures > 0) {
    std::printf("FAIL: %d shadow flip(s) errored or fell back to the "
                "blocking path\n",
                shadow.failures);
    ok = false;
  }
  if (p95_shadow > p95_bound) {
    std::printf("FAIL: migrating p95 %.3f ms exceeds bound %.3f ms "
                "(max(%.0fx idle, %.0f ms))\n",
                p95_shadow, p95_bound, kP95Factor, kP95FloorMs);
    ok = false;
  }
  if (shadow.cutover_max_ms > kCutoverBoundMs) {
    std::printf("FAIL: cut-over window %.3f ms exceeds %.0f ms bound\n",
                shadow.cutover_max_ms, kCutoverBoundMs);
    ok = false;
  }
  if (ok) {
    std::printf("PASS: migrating p95 %.3f <= %.3f ms; cut-over max %.3f <= "
                "%.0f ms; all %d flips non-blocking\n",
                p95_shadow, p95_bound, shadow.cutover_max_ms, kCutoverBoundMs,
                shadow.flips);
  }

  if (!json_path.empty()) {
    WriteJson(json_path,
              {{"fig_online_migration/query_p95_idle_ms", p95_idle},
               {"fig_online_migration/query_p95_migrating_ms", p95_shadow},
               {"fig_online_migration/shadow_build_ms", build_mean_ms}});
  }
  if (!ok) std::exit(1);
}

}  // namespace
}  // namespace hsdb

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 1;
    }
  }
  hsdb::Run(json_path);
  return 0;
}
