#!/usr/bin/env python3
"""CI perf-regression gate for the gated benchmarks.

Merges one or more google-benchmark JSON outputs (micro_compression,
micro_costmodel, and the --json advisor/adaptation/migration timings of
fig_joint_budget, fig_drift_adapt and fig_online_migration) into a single
BENCH_micro.json and
compares it against the committed baseline: the gate fails when any
benchmark's time regresses by more than the threshold (default 25%).

Baseline and PR runs usually execute on different machines, so raw ratios
mix machine speed with real regressions. The gate therefore normalizes each
benchmark's new/old time ratio by the median ratio across all benchmarks:
a uniformly slower runner shifts every ratio equally and cancels out, while
a genuine regression sticks out against the fleet. (A change that slows
*every* benchmark uniformly would be invisible to this gate — that is the
price of machine independence.)

Usage:
  check_regression.py --baseline bench/baselines/BENCH_micro.json \
      --out BENCH_micro.json [--threshold 1.25] new1.json [new2.json ...]

Regenerate the baseline preferably through CI: trigger the workflow's
"Run workflow" button (workflow_dispatch) and commit the uploaded
'baseline-candidate' artifact as bench/baselines/BENCH_micro.json. On any
machine (Release build) the equivalent is:
  ./build/micro_compression --benchmark_repetitions=3 --benchmark_out=mc.json --benchmark_out_format=json
  ./build/micro_costmodel   --benchmark_repetitions=3 --benchmark_out=cm.json --benchmark_out_format=json
  HSDB_BENCH_SCALE=0.02 ./build/fig_joint_budget --json fjb.json
  HSDB_BENCH_SCALE=0.02 ./build/fig_drift_adapt --json fda.json
  HSDB_BENCH_SCALE=0.02 ./build/fig_online_migration --json fom.json
  python3 bench/check_regression.py --merge-only --out bench/baselines/BENCH_micro.json mc.json cm.json fjb.json fda.json fom.json
"""

import argparse
import json
import os
import statistics
import sys


def load_benchmarks(path):
    """Returns {base_name: time_seconds} per benchmark.

    With --benchmark_repetitions the run contains per-repetition rows plus
    aggregate rows; the median aggregate is preferred (noise suppression on
    shared CI runners). Without repetitions the single iteration row is
    used. Keys are the repetition-independent base name (run_name), so
    baselines with and without repetitions stay comparable.
    """
    with open(path) as f:
        doc = json.load(f)
    unit_to_seconds = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    plain = {}
    medians = {}
    for bench in doc.get("benchmarks", []):
        seconds = bench["real_time"] * unit_to_seconds[bench.get("time_unit", "ns")]
        base = bench.get("run_name", bench["name"])
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[base] = seconds
        else:
            # Several repetition rows share the base name; keep the median
            # of what we saw so far by collecting into a list.
            plain.setdefault(base, []).append(seconds)
    out = {name: statistics.median(times) for name, times in plain.items()}
    out.update(medians)
    return doc, out


def merge(paths, out_path):
    """Concatenates the benchmark arrays of several result files."""
    merged = None
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if merged is None:
            merged = doc
        else:
            merged.setdefault("benchmarks", []).extend(doc.get("benchmarks", []))
    if merged is None:
        merged = {"benchmarks": []}
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=1)
    return merged


def check_telemetry_overhead(new, threshold):
    """Asserts the telemetry layer's overhead bound within a single run.

    BM_TelemetryOverhead runs the same aggregation scan in three modes:
    telemetry:0 raw executor (no accounting), telemetry:1 registry disabled,
    telemetry:2 enabled. All three rows come from the same binary on the
    same machine, so the raw ratios are meaningful without the fleet-median
    normalization: enabled/disabled and disabled/raw must both stay under
    the threshold (default 2%). Returns a list of failure strings.
    """
    times = {}
    for mode in (0, 1, 2):
        name = f"BM_TelemetryOverhead/telemetry:{mode}"
        if name in new and new[name] > 0:
            times[mode] = new[name]
    if len(times) < 3:
        print("NOTE: BM_TelemetryOverhead rows missing; telemetry overhead "
              "not checked (rebuild micro_compression?)")
        return []
    failures = []
    for label, num, den in (("disabled-vs-raw", 1, 0),
                            ("enabled-vs-disabled", 2, 1)):
        ratio = times[num] / times[den]
        status = "REGRESSION" if ratio > threshold else "ok"
        print(f"telemetry overhead {label}: {ratio:.4f}x "
              f"(limit {threshold:.2f}x) {status}")
        if ratio > threshold:
            failures.append(
                f"telemetry overhead {label}: {ratio:.4f}x > {threshold:.2f}x")
    return failures


def check_parallel_speedup(new, threshold):
    """Asserts the morsel-parallel scan path actually scales, within-run.

    BM_ParallelScan and BM_ParallelPackedFilter run the same scan at
    threads:1 (serial code path) and threads:4; both rows come from the
    same binary on the same machine, so like the telemetry check the raw
    wall-clock ratio needs no fleet normalization. The bound only applies
    on a multi-core runner (>= 4 CPUs): on smaller machines the rows are
    reported but a missing speedup is expected, not a regression. Returns
    a list of failure strings.
    """
    cpus = os.cpu_count() or 1
    failures = []
    for bench in ("BM_ParallelScan", "BM_ParallelPackedFilter"):
        serial = new.get(f"{bench}/threads:1")
        parallel = new.get(f"{bench}/threads:4")
        if not serial or not parallel:
            print(f"NOTE: {bench} thread rows missing; parallel speedup "
                  "not checked (rebuild micro_compression?)")
            continue
        speedup = serial / parallel
        if cpus < 4:
            print(f"parallel speedup {bench}: {speedup:.2f}x at 4 threads "
                  f"(not gated: only {cpus} CPU(s) on this runner)")
            continue
        status = "REGRESSION" if speedup < threshold else "ok"
        print(f"parallel speedup {bench}: {speedup:.2f}x at 4 threads "
              f"(limit {threshold:.2f}x) {status}")
        if speedup < threshold:
            failures.append(
                f"parallel speedup {bench}: {speedup:.2f}x < {threshold:.2f}x")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", help="benchmark JSON outputs to merge")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--out", required=True, help="merged output path (BENCH_micro.json)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="max allowed normalized time ratio (1.25 = 25%% regression)")
    parser.add_argument("--telemetry-threshold", type=float, default=1.02,
                        help="max allowed telemetry on/off time ratio within "
                             "this run (1.02 = 2%% overhead)")
    parser.add_argument("--parallel-speedup-threshold", type=float, default=2.5,
                        help="min required 4-thread wall-clock speedup of the "
                             "morsel-parallel scans, gated only on runners "
                             "with >= 4 CPUs")
    parser.add_argument("--merge-only", action="store_true",
                        help="only merge the inputs into --out (baseline regeneration)")
    args = parser.parse_args()

    merge(args.results, args.out)
    if args.merge_only:
        print(f"wrote {args.out}")
        return 0
    if not args.baseline:
        parser.error("--baseline is required unless --merge-only is given")

    _, old = load_benchmarks(args.baseline)
    _, new = load_benchmarks(args.out)

    overhead_failures = check_telemetry_overhead(new, args.telemetry_threshold)
    overhead_failures += check_parallel_speedup(
        new, args.parallel_speedup_threshold)

    common = sorted(name for name in set(old) & set(new) if old[name] > 0)
    missing = sorted(set(old) - set(new))
    if missing:
        print("WARNING: benchmarks in the baseline but not in this run "
              "(renamed or removed? refresh the baseline):")
        for name in missing:
            print(f"  {name}")
    if not common:
        print("ERROR: no comparable benchmarks in common with the baseline")
        return 1

    ratios = {name: new[name] / old[name] for name in common}
    median = statistics.median(ratios.values())
    print(f"{len(ratios)} benchmarks, median time ratio {median:.3f} "
          f"(machine-speed normalizer), threshold {args.threshold:.2f}x")
    print(f"{'benchmark':60s} {'old':>12s} {'new':>12s} {'norm_ratio':>10s}")

    failures = []
    for name in common:
        norm = ratios[name] / median
        flag = ""
        if norm > args.threshold:
            failures.append((name, norm))
            flag = "  << REGRESSION"
        print(f"{name:60s} {old[name]*1e3:10.4f}ms {new[name]*1e3:10.4f}ms "
              f"{norm:9.3f}x{flag}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{(args.threshold - 1) * 100:.0f}% (normalized):")
        for name, norm in failures:
            print(f"  {name}: {norm:.3f}x")
        return 1
    if overhead_failures:
        print("\nFAIL: within-run bound violated:")
        for line in overhead_failures:
            print(f"  {line}")
        return 1
    print("\nOK: no benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
