// Budget sweep for the advisor's per-column encoding search: estimated
// workload cost as a function of the memory budget granted to the encoded
// column-store segments. Expected shape: flat at the unconstrained optimum
// while the budget is slack, a rising curve as the budget squeezes fast
// codecs back into small ones, and infeasible below the per-column footprint
// floor. The picker's heuristic assignment (per-column footprint minimum) is
// the horizontal baseline — at every feasible budget the search must match
// or beat it.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/encoding_search.h"
#include "executor/database.h"

namespace hsdb {
namespace {

void Run() {
  const size_t rows = bench::ScaledRows(2e6, 50'000);
  bench::PrintBanner(
      "encoding budget sweep",
      "sales fact table (dense id, run-structured date, low-card status, "
      "high-card amount), scan-heavy workload + inserts",
      "cost flat at slack budgets, rising once the budget binds; never "
      "above the picker baseline at feasible budgets");

  Schema schema = Schema::CreateOrDie({{"id", DataType::kInt64},
                                       {"day", DataType::kDate},
                                       {"status", DataType::kVarchar},
                                       {"amount", DataType::kDouble}},
                                      /*primary_key=*/{0});
  Database db;
  HSDB_CHECK(db.CreateTable("fact", schema,
                            TableLayout::SingleStore(StoreType::kColumn))
                 .ok());
  LogicalTable* fact = db.catalog().GetTable("fact");
  const char* statuses[] = {"OPEN", "PAID", "SHIPPED", "RETURNED"};
  Rng rng(20120831);
  for (size_t i = 0; i < rows; ++i) {
    HSDB_CHECK(fact
                   ->Insert(Row{Value(static_cast<int64_t>(i)),
                                Value(Date{static_cast<int32_t>(i / 400)}),
                                Value(std::string(statuses[rng.Index(4)])),
                                Value(rng.UniformDouble(0.0, 1e9))})
                   .ok());
  }
  fact->ForceMerge();
  db.catalog().UpdateAllStatistics();

  CostModel model(bench::CalibratedParams());
  std::map<std::string, LayoutContext> layouts;
  layouts.emplace("fact", LayoutContext::SingleStore(StoreType::kColumn));

  AggregationQuery olap;
  olap.tables = {"fact"};
  olap.aggregates = {{AggFn::kSum, {3, 0}}};
  olap.group_by = {{2, 0}};
  olap.predicate = {
      {{1, 0},
       ValueRange::Between(Value(Date{100}),
                           Value(Date{static_cast<int32_t>(rows / 800)}))}};
  InsertQuery insert{"fact",
                     Row{Value(static_cast<int64_t>(rows) + 1),
                         Value(Date{0}), Value(std::string("OPEN")),
                         Value(0.0)}};
  std::vector<WeightedQuery> workload = {
      WeightedQuery{Query(olap), 400.0},
      WeightedQuery{Query(insert), 40.0}};

  // Anchor the sweep on the unconstrained optimum and the feasibility floor.
  EncodingSearch unconstrained(&model, &db.catalog());
  EncodingSearchResult top = unconstrained.Search(workload, layouts);
  std::printf(
      "unconstrained: cost %.3f ms, footprint %.0f bytes "
      "(picker: %.3f ms, %.0f bytes; floor %.0f bytes)\n\n",
      top.cost_ms, top.footprint_bytes, top.picker_cost_ms,
      top.picker_footprint_bytes, top.min_footprint_bytes);
  std::printf("%8s  %12s  %12s  %10s  %s\n", "budget%", "budget_bytes",
              "cost_ms", "vs_picker", "feasible");
  bench::PrintRule();

  // Sweep from 120% of the unconstrained footprint down past the floor.
  for (int pct = 120; pct >= 40; pct -= 10) {
    EncodingSearchOptions options;
    options.memory_budget_bytes =
        top.footprint_bytes * static_cast<double>(pct) / 100.0;
    EncodingSearch search(&model, &db.catalog(), options);
    EncodingSearchResult r = search.Search(workload, layouts);
    std::printf("%7d%%  %12.0f  %12.3f  %9.3fx  %s\n", pct,
                *options.memory_budget_bytes, r.cost_ms,
                r.cost_ms / r.picker_cost_ms,
                r.feasible ? "yes" : "NO (floor)");
  }
}

}  // namespace
}  // namespace hsdb

int main() {
  hsdb::Run();
  return 0;
}
