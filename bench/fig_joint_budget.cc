// Budget sweep for the joint layout+encoding search: estimated workload
// cost of the advisor's recommendation as a function of the shared memory
// budget, joint mode against the staged layout-then-encoding pipeline.
// Expected shape: the two curves coincide while the budget is slack; once
// it binds, the staged pipeline can only downgrade codecs (and goes
// infeasible below its fixed layouts' footprint floor) while the joint
// search starts flipping low-value tables to the row store — so the joint
// curve is never above the sequential curve at any feasible point, and
// stays feasible all the way down to a zero budget.
//
// --json PATH additionally writes the advisor's joint-search wall-clock
// timings (fixed seeds, median of 3 runs) in google-benchmark JSON format,
// so CI's perf-regression gate (bench/check_regression.py) can track the
// cost of the search itself alongside the micro benches.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/advisor.h"
#include "executor/database.h"

namespace hsdb {
namespace {

struct Timing {
  std::string name;
  double ms = 0.0;
};

/// Median of 3 samples, each the mean wall clock over `reps` advisor
/// recommendations (one recommendation is sub-millisecond, so a single run
/// would be scheduler noise).
template <typename Fn>
double MedianMs(Fn&& fn, int reps = 8) {
  std::vector<double> runs;
  for (int i = 0; i < 3; ++i) {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) fn();
    runs.push_back(sw.ElapsedMs() / reps);
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

/// Minimal google-benchmark-format JSON: one iteration row per timing, in
/// milliseconds, consumable by bench/check_regression.py.
void WriteJson(const std::string& path, const std::vector<Timing>& timings) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n \"context\": {\"executable\": \"fig_joint_budget\"},\n"
                  " \"benchmarks\": [\n");
  for (size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"run_name\": \"%s\", "
                 "\"run_type\": \"iteration\", \"iterations\": 3, "
                 "\"real_time\": %.6f, \"cpu_time\": %.6f, "
                 "\"time_unit\": \"ms\"}%s\n",
                 timings[i].name.c_str(), timings[i].name.c_str(),
                 timings[i].ms, timings[i].ms,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, " ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

void Run(const std::string& json_path) {
  const size_t rows = bench::ScaledRows(2e6, 30'000);
  bench::PrintBanner(
      "joint budget sweep",
      "two sales fact tables (hot: heavily scanned, cold: lightly "
      "scanned), scan workload + inserts, one shared memory budget",
      "joint cost <= sequential cost at every feasible budget; joint stays "
      "feasible below the sequential floor by flipping cold to the row "
      "store");

  Schema schema = Schema::CreateOrDie({{"id", DataType::kInt64},
                                       {"day", DataType::kDate},
                                       {"status", DataType::kVarchar},
                                       {"amount", DataType::kDouble}},
                                      /*primary_key=*/{0});
  Database db;
  for (const char* name : {"hot", "cold"}) {
    HSDB_CHECK(db.CreateTable(name, schema,
                              TableLayout::SingleStore(StoreType::kRow))
                   .ok());
    LogicalTable* table = db.catalog().GetTable(name);
    const char* statuses[] = {"OPEN", "PAID", "SHIPPED", "RETURNED"};
    Rng rng(20120831);
    for (size_t i = 0; i < rows; ++i) {
      HSDB_CHECK(table
                     ->Insert(Row{Value(static_cast<int64_t>(i)),
                                  Value(Date{static_cast<int32_t>(i / 400)}),
                                  Value(std::string(statuses[rng.Index(4)])),
                                  Value(rng.UniformDouble(0.0, 1e9))})
                     .ok());
    }
    table->ForceMerge();
  }
  db.catalog().UpdateAllStatistics();

  auto scan = [&](const char* table) {
    AggregationQuery olap;
    olap.tables = {table};
    olap.aggregates = {{AggFn::kSum, {3, 0}}};
    olap.group_by = {{2, 0}};
    // Half the day domain (days run 0 .. rows/400 at load time).
    olap.predicate = {
        {{1, 0},
         ValueRange::Between(Value(Date{10}),
                             Value(Date{static_cast<int32_t>(rows / 800)}))}};
    return Query(olap);
  };
  std::vector<Query> workload;
  for (int i = 0; i < 40; ++i) workload.push_back(scan("hot"));
  for (int i = 0; i < 2; ++i) workload.push_back(scan("cold"));
  InsertQuery insert{"hot",
                     Row{Value(static_cast<int64_t>(rows) + 1), Value(Date{0}),
                         Value(std::string("OPEN")), Value(0.0)}};
  for (int i = 0; i < 4; ++i) workload.push_back(Query(insert));

  // Fixed analytic default parameters, deliberately not calibrated: the
  // joint <= sequential guarantee must hold under any parameters, and the
  // gated timings below must not vary with per-machine calibration (only
  // with the search's own speed, which the gate normalizes for).
  CostModelParams params = CostModelParams::Default();
  auto recommend = [&](std::optional<double> budget, bool joint) {
    AdvisorOptions options;
    options.encoding.memory_budget_bytes = budget;
    options.joint_budget_search = joint;
    StorageAdvisor advisor(&db, options);
    advisor.SetCostModelParams(params);
    Result<Recommendation> rec = advisor.RecommendOffline(workload);
    HSDB_CHECK(rec.ok());
    return std::move(rec).value();
  };

  // Anchor the sweep on the unconstrained joint footprint.
  Recommendation top = recommend(std::nullopt, /*joint=*/true);
  std::printf(
      "unconstrained: joint cost %.3f ms (sequential %.3f ms), "
      "footprint %.0f bytes\n\n",
      top.estimated_cost_ms, top.sequential_cost_ms,
      top.encoding_footprint_bytes);
  std::printf("%8s  %12s  %12s | %12s %9s | %12s %9s | %9s\n", "budget%",
              "budget_bytes", "", "joint_ms", "feasible", "seq_ms",
              "feasible", "joint/seq");
  bench::PrintRule();

  bool joint_never_worse = true;
  for (int pct = 120; pct >= 0; pct -= 15) {
    const double budget =
        top.encoding_footprint_bytes * static_cast<double>(pct) / 100.0;
    Recommendation joint = recommend(budget, /*joint=*/true);
    Recommendation seq = recommend(budget, /*joint=*/false);
    if (seq.encoding_budget_feasible &&
        joint.estimated_cost_ms > seq.estimated_cost_ms * (1.0 + 1e-9)) {
      joint_never_worse = false;
    }
    std::printf("%7d%%  %12.0f  %12s | %12.3f %9s | %12.3f %9s | %8.3fx\n",
                pct, budget, "", joint.estimated_cost_ms,
                joint.encoding_budget_feasible ? "yes" : "NO",
                seq.estimated_cost_ms,
                seq.encoding_budget_feasible ? "yes" : "NO",
                joint.estimated_cost_ms / seq.estimated_cost_ms);
  }
  std::printf("\njoint <= sequential at every feasible budget: %s\n",
              joint_never_worse ? "yes" : "VIOLATED");
  if (!joint_never_worse) std::exit(1);

  if (!json_path.empty()) {
    std::vector<Timing> timings;
    timings.push_back(
        {"fig_joint_budget/advise_unconstrained",
         MedianMs([&] { recommend(std::nullopt, /*joint=*/true); })});
    const double binding = top.encoding_footprint_bytes * 0.6;
    timings.push_back(
        {"fig_joint_budget/advise_joint_binding_budget",
         MedianMs([&] { recommend(binding, /*joint=*/true); })});
    timings.push_back(
        {"fig_joint_budget/advise_sequential_binding_budget",
         MedianMs([&] { recommend(binding, /*joint=*/false); })});
    WriteJson(json_path, timings);
  }
}

}  // namespace
}  // namespace hsdb

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 1;
    }
  }
  hsdb::Run(json_path);
  return 0;
}
