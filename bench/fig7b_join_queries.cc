// Figure 7(b): recommendation quality with join queries.
// Paper setup: star schema — fact table (10 attributes, 20M tuples), small
// dimension (6 attributes, 1000 tuples) fixed in the row store; workloads
// with OLAP join queries at fractions 0%..5%; the advisor chooses the fact
// table's store. Expected shape: like Fig. 7(a) but with a lower crossover.
#include <vector>

#include "bench_util.h"
#include "core/table_advisor.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace hsdb {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure 7(b): recommendation quality, join queries",
      "star schema: fact 10 attrs x 20M tuples (scaled), dim 6 attrs x 1000 "
      "rows in the row store; OLAP = join aggregations",
      "same shape as 7(a) with a lower crossover fraction");

  CostModel model(bench::CalibratedParams());
  StarSchemaSpec spec;
  const size_t fact_rows = bench::ScaledRows(20e6);
  const size_t num_queries = bench::ScaledQueries(500, 200);
  std::printf("fact rows = %zu, dim rows = %llu, queries = %zu\n", fact_rows,
              static_cast<unsigned long long>(spec.dim_rows), num_queries);

  std::printf("%14s %12s %12s %10s %14s %10s\n", "OLAP fraction",
              "RS-only (s)", "CS-only (s)", "advisor", "advisor (s)",
              "optimal?");
  int advisor_optimal = 0;
  int sweeps = 0;
  for (double frac : {0.0, 0.0125, 0.025, 0.0375, 0.05}) {
    WorkloadOptions opts;
    opts.olap_fraction = frac;
    opts.seed = 4321;

    double measured[2];
    StoreType recommended = StoreType::kRow;
    for (StoreType fact_store : {StoreType::kRow, StoreType::kColumn}) {
      Database db;
      HSDB_CHECK(db.CreateTable(spec.fact_name, spec.MakeFactSchema(),
                                TableLayout::SingleStore(fact_store))
                     .ok());
      // The paper fixes the small dimension in the row store.
      HSDB_CHECK(db.CreateTable(spec.dim_name, spec.MakeDimSchema(),
                                TableLayout::SingleStore(StoreType::kRow))
                     .ok());
      HSDB_CHECK(PopulateStarSchema(db.catalog().GetTable(spec.fact_name),
                                    db.catalog().GetTable(spec.dim_name),
                                    spec, fact_rows)
                     .ok());
      db.catalog().UpdateAllStatistics();

      StarWorkloadGenerator gen(spec, fact_rows, opts);
      std::vector<Query> workload = gen.Generate(num_queries);

      if (fact_store == StoreType::kRow) {
        TableAdvisor advisor(&model, &db.catalog());
        TableAdvisorResult rec = advisor.Recommend(ToWeighted(workload));
        recommended = rec.assignment.at(spec.fact_name);
      }
      WorkloadRunResult run = RunWorkload(db, workload);
      HSDB_CHECK(run.failed == 0);
      measured[static_cast<int>(fact_store)] = run.total_ms;
    }
    double advisor_ms = measured[static_cast<int>(recommended)];
    bool optimal =
        advisor_ms <= std::min(measured[0], measured[1]) + 1e-9;
    advisor_optimal += optimal;
    ++sweeps;
    std::printf("%13.2f%% %12.3f %12.3f %10s %14.3f %10s\n", frac * 100,
                measured[0] / 1000.0, measured[1] / 1000.0,
                std::string(StoreTypeName(recommended)).c_str(),
                advisor_ms / 1000.0, optimal ? "yes" : "no");
    std::fflush(stdout);
  }
  bench::PrintRule();
  std::printf("advisor picked the measured-optimal store in %d/%d settings\n",
              advisor_optimal, sweeps);
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
