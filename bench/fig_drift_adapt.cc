// Phase-shift sweep for the online adaptation subsystem: estimated workload
// cost per epoch of three regimes over the same OLTP -> OLAP phase shift —
//   frozen   the design solved before the shift, never revisited,
//   adapted  the AdaptationController (drift detection -> conditional
//            re-search -> incremental migration),
//   oracle   a fresh online re-solve applied in full every epoch.
// Expected shape: all three coincide before the shift (and the controller
// performs ZERO re-searches there — drift stays below threshold on a
// stationary workload); after the shift the frozen design pays the OLAP
// scans in the row store while the adapted design converges to within 10%
// of the oracle. The run exits nonzero when either property is violated.
//
// --json PATH writes wall-clock timings of the adaptation loop's moving
// parts (drift snapshot+compare, migration planning) in google-benchmark
// JSON format for CI's perf gate (bench/check_regression.py).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/advisor.h"
#include "online/controller.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace hsdb {
namespace {

struct Timing {
  std::string name;
  double ms = 0.0;
};

/// Median of 3 samples, each the mean wall clock over `reps` calls.
template <typename Fn>
double MedianMs(Fn&& fn, int reps) {
  std::vector<double> runs;
  for (int i = 0; i < 3; ++i) {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) fn();
    runs.push_back(sw.ElapsedMs() / reps);
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

/// Minimal google-benchmark-format JSON (see fig_joint_budget.cc).
void WriteJson(const std::string& path, const std::vector<Timing>& timings) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n \"context\": {\"executable\": \"fig_drift_adapt\"},\n"
                  " \"benchmarks\": [\n");
  for (size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"run_name\": \"%s\", "
                 "\"run_type\": \"iteration\", \"iterations\": 3, "
                 "\"real_time\": %.6f, \"cpu_time\": %.6f, "
                 "\"time_unit\": \"ms\"}%s\n",
                 timings[i].name.c_str(), timings[i].name.c_str(),
                 timings[i].ms, timings[i].ms,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, " ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

/// One independent copy of the system under a regime: its own database
/// (identically populated, identically driven) and advisor.
struct System {
  std::unique_ptr<Database> db;
  std::unique_ptr<StorageAdvisor> advisor;
};

System MakeSystem(const SyntheticTableSpec& spec, size_t rows,
                  const CostModelParams& params) {
  System s;
  s.db = std::make_unique<Database>();
  HSDB_CHECK(s.db
                 ->CreateTable(spec.name, spec.MakeSchema(),
                               TableLayout::SingleStore(StoreType::kColumn))
                 .ok());
  HSDB_CHECK(
      PopulateSynthetic(s.db->catalog().GetTable(spec.name), spec, rows).ok());
  s.db->catalog().UpdateAllStatistics();
  s.advisor = std::make_unique<StorageAdvisor>(s.db.get());
  s.advisor->SetCostModelParams(params);
  s.advisor->StartRecording();
  return s;
}

/// Estimated cost of `queries` under the system's *current* catalog design.
double DesignCost(const System& s, const std::vector<Query>& queries) {
  WorkloadCostEstimator estimator(&s.advisor->cost_model(),
                                  &s.db->catalog());
  return estimator.WorkloadCost(
      ToWeighted(queries), [&](const std::string& name) {
        const LogicalTable* table = s.db->catalog().GetTable(name);
        if (table == nullptr) return LayoutContext{};
        return CurrentLayoutContext(*table,
                                    s.db->catalog().GetStatistics(name));
      });
}

void Run(const std::string& json_path) {
  const size_t rows = bench::ScaledRows(1e6, 20'000);
  const size_t queries_per_epoch = 400;
  const int num_epochs = 8;
  const int shift_epoch = 5;  // epochs 1..4 OLTP, 5..8 OLAP
  bench::PrintBanner(
      "drift adapt (online mode, Fig. 5 loop)",
      "one synthetic table, OLTP phase then OLAP phase shift; frozen vs "
      "controller-adapted vs per-epoch oracle re-solve",
      "zero re-searches while stationary; after the shift the adapted "
      "design converges to within 10% of the oracle while the frozen "
      "design stays measurably worse");

  SyntheticTableSpec spec;
  spec.name = "events";
  // Fixed analytic parameters: the regime comparison must not vary with
  // per-machine calibration, and the gated timings below track only the
  // adaptation machinery's own speed.
  const CostModelParams params = CostModelParams::Default();

  System frozen = MakeSystem(spec, rows, params);
  System adapted = MakeSystem(spec, rows, params);
  System oracle = MakeSystem(spec, rows, params);

  auto epoch_options = [&](int epoch) {
    WorkloadOptions opts;
    opts.olap_fraction = epoch >= shift_epoch ? 0.85 : 0.0;
    opts.seed = 1000 + static_cast<uint64_t>(epoch);
    return opts;
  };

  // Epoch 0: initial recording + one recommendation applied everywhere, so
  // all regimes start from the same design solved for the OLTP profile.
  {
    SyntheticWorkloadGenerator gen(
        spec, frozen.db->catalog().GetTable(spec.name)->row_count(),
        epoch_options(0));
    std::vector<Query> warmup = gen.Generate(queries_per_epoch);
    for (System* s : {&frozen, &adapted, &oracle}) {
      RunWorkload(*s->db, warmup);
      Result<Recommendation> rec = s->advisor->RecommendOnline();
      HSDB_CHECK(rec.ok());
      HSDB_CHECK(s->advisor->Apply(*rec).ok());
    }
  }
  AdaptationOptions copts;
  copts.min_epoch_queries = 64;
  copts.cooldown_epochs = 1;
  copts.migration_steps_per_tick = 1;
  AdaptationController& controller = adapted.advisor->StartAutoAdapt(copts);

  std::printf("initial design (all regimes): %s\n\n",
              frozen.db->catalog()
                  .GetTable(spec.name)
                  ->layout()
                  .ToString()
                  .c_str());
  std::printf("%5s %6s | %12s %12s %12s | %9s | %s\n", "epoch", "phase",
              "frozen_ms", "adapted_ms", "oracle_ms", "adp/orac",
              "controller decision");
  bench::PrintRule();

  size_t researches_before_shift = 0;
  double final_frozen = 0.0, final_adapted = 0.0, final_oracle = 0.0;
  for (int epoch = 1; epoch <= num_epochs; ++epoch) {
    SyntheticWorkloadGenerator gen(
        spec, frozen.db->catalog().GetTable(spec.name)->row_count(),
        epoch_options(epoch));
    std::vector<Query> queries = gen.Generate(queries_per_epoch);
    for (System* s : {&frozen, &adapted, &oracle}) {
      RunWorkload(*s->db, queries);
    }
    // Frozen never adapts; bound its recorder window anyway.
    frozen.advisor->recorder()->BeginEpoch();
    // The controller judges the adapted system's epoch.
    AdaptationLogEntry entry = controller.Tick();
    // The oracle re-solves from scratch and applies in full.
    Result<Recommendation> fresh = oracle.advisor->RecommendOnline();
    HSDB_CHECK(fresh.ok());
    HSDB_CHECK(oracle.advisor->Apply(*fresh).ok());

    const double frozen_ms = DesignCost(frozen, queries);
    const double adapted_ms = DesignCost(adapted, queries);
    const double oracle_ms = DesignCost(oracle, queries);
    if (epoch < shift_epoch) {
      researches_before_shift = controller.researches();
    }
    if (epoch == num_epochs) {
      final_frozen = frozen_ms;
      final_adapted = adapted_ms;
      final_oracle = oracle_ms;
    }
    std::printf("%5d %6s | %12.3f %12.3f %12.3f | %8.3fx | %s\n", epoch,
                epoch >= shift_epoch ? "OLAP" : "OLTP", frozen_ms, adapted_ms,
                oracle_ms, adapted_ms / oracle_ms,
                AdaptDecisionName(entry.decision));
  }

  std::printf("\nfinal layouts: frozen %s, adapted %s, oracle %s\n",
              frozen.db->catalog().GetTable(spec.name)->layout().ToString()
                  .c_str(),
              adapted.db->catalog().GetTable(spec.name)->layout().ToString()
                  .c_str(),
              oracle.db->catalog().GetTable(spec.name)->layout().ToString()
                  .c_str());
  std::printf("re-searches before the shift: %zu (stationary => want 0), "
              "total %zu\n",
              researches_before_shift, controller.researches());
  const double adapted_ratio = final_adapted / final_oracle;
  const double frozen_ratio = final_frozen / final_oracle;
  std::printf("final epoch: adapted/oracle %.3fx (want <= 1.10), "
              "frozen/oracle %.3fx (want >= 1.10)\n",
              adapted_ratio, frozen_ratio);

  bool ok = true;
  if (researches_before_shift != 0) {
    std::printf("VIOLATION: controller re-searched a stationary workload\n");
    ok = false;
  }
  if (controller.researches() == 0) {
    std::printf("VIOLATION: controller never re-searched after the shift\n");
    ok = false;
  }
  if (adapted_ratio > 1.10) {
    std::printf("VIOLATION: adapted design not within 10%% of the oracle\n");
    ok = false;
  }
  if (frozen_ratio < 1.10) {
    std::printf("VIOLATION: frozen design not measurably worse than the "
                "oracle after the shift\n");
    ok = false;
  }
  if (!ok) std::exit(1);
  std::printf("all drift-adaptation properties hold\n");

  if (!json_path.empty()) {
    std::vector<Timing> timings;
    // Drift sensing: profile snapshot of both windows + comparison.
    WorkloadStatistics oltp_stats, olap_stats;
    {
      SyntheticWorkloadGenerator g1(spec, rows, epoch_options(1));
      for (const Query& q : g1.Generate(queries_per_epoch)) {
        oltp_stats.Record(q, frozen.db->catalog());
      }
      SyntheticWorkloadGenerator g2(spec, rows, epoch_options(shift_epoch));
      for (const Query& q : g2.Generate(queries_per_epoch)) {
        olap_stats.Record(q, frozen.db->catalog());
      }
    }
    DriftDetector detector;
    timings.push_back({"fig_drift_adapt/drift_snapshot_compare",
                       MedianMs(
                           [&] {
                             WorkloadProfile a =
                                 WorkloadProfile::Snapshot(oltp_stats);
                             WorkloadProfile b =
                                 WorkloadProfile::Snapshot(olap_stats);
                             (void)detector.Compare(a, b);
                           },
                           200)});
    // Migration planning against the frozen (still OLTP-shaped) system: an
    // OLAP recommendation yields a real plan with costed, ordered steps.
    SyntheticWorkloadGenerator gen(
        spec, frozen.db->catalog().GetTable(spec.name)->row_count(),
        epoch_options(shift_epoch));
    Result<Recommendation> rec =
        frozen.advisor->RecommendOffline(gen.Generate(queries_per_epoch));
    HSDB_CHECK(rec.ok());
    MigrationExecutor executor(frozen.db.get(),
                               &frozen.advisor->cost_model());
    timings.push_back({"fig_drift_adapt/migration_plan",
                       MedianMs([&] { (void)executor.Plan(*rec); }, 20)});
    WriteJson(json_path, timings);
  }
}

}  // namespace
}  // namespace hsdb

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 1;
    }
  }
  hsdb::Run(json_path);
  return 0;
}
