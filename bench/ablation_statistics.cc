// Ablation: recommendation quality vs. amount of recorded statistics — the
// paper's stated future work ("identify a preferably small set of statistics
// that still provides high quality recommendations", §7). The online
// recorder's reservoir sample is swept from 16 queries to the full stream;
// quality is the estimated cost of the resulting recommendation relative to
// the full-information recommendation.
#include <vector>

#include "bench_util.h"
#include "core/advisor.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace hsdb {
namespace {

int Run() {
  bench::PrintBanner(
      "Ablation: recommendation quality vs. recorded statistics",
      "mixed workload (2% OLAP, hot updates); recorder sample size swept",
      "quality should saturate at a small sample (the paper's future-work "
      "hypothesis)");

  CostModel model(bench::CalibratedParams());
  SyntheticTableSpec spec;
  spec.name = "t";
  const size_t rows = bench::ScaledRows(2e6);
  const size_t stream_len = 4000;

  WorkloadOptions opts;
  opts.olap_fraction = 0.02;
  opts.hot_key_fraction = 0.1;
  opts.wide_update_probability = 0.3;
  opts.seed = 2024;

  // Reference: recommendation from the full stream.
  std::vector<Query> stream;
  {
    SyntheticWorkloadGenerator gen(spec, rows, opts);
    stream = gen.Generate(stream_len);
  }

  auto recommend_cost = [&](size_t sample_size) {
    Database db;
    HSDB_CHECK(db.CreateTable("t", spec.MakeSchema(),
                              TableLayout::SingleStore(StoreType::kColumn))
                   .ok());
    HSDB_CHECK(
        PopulateSynthetic(db.catalog().GetTable("t"), spec, rows).ok());
    db.catalog().UpdateAllStatistics();

    AdvisorOptions adv_opts;
    adv_opts.recorder_sample = sample_size;
    StorageAdvisor advisor(&db, adv_opts);
    advisor.SetCostModelParams(model.params());
    advisor.StartRecording();
    // Replay the stream without executing it (recording only): we record
    // through the observer by executing; execution also keeps table
    // statistics truthful under the inserts.
    RunWorkload(db, stream);
    Result<Recommendation> rec = advisor.RecommendOnline();
    HSDB_CHECK_MSG(rec.ok(), rec.status().ToString().c_str());
    // Judge the recommendation under the FULL workload model.
    WorkloadCostEstimator est(&model, &db.catalog());
    auto full = ToWeighted(stream);
    double cost = est.WorkloadCost(full, [&](const std::string& name) {
      auto it = rec->layouts.find(name);
      return it == rec->layouts.end()
                 ? LayoutContext::SingleStore(StoreType::kRow)
                 : it->second;
    });
    return std::make_pair(cost, rec->layouts.at("t").layout.ToString());
  };

  auto [full_cost, full_layout] = recommend_cost(stream_len);
  std::printf("full-information recommendation: %s (cost %.1f ms)\n",
              full_layout.c_str(), full_cost);
  bench::PrintRule();
  std::printf("%14s %16s %12s   %s\n", "sample size", "est. cost (ms)",
              "penalty", "chosen layout");
  // Sample size 0 = statistics-only mode: the advisor reconstructs the
  // workload from the extended counters alone (cheapest recording).
  for (size_t sample : {size_t{0}, size_t{16}, size_t{64}, size_t{256},
                        size_t{1024}, stream_len}) {
    auto [cost, layout] = recommend_cost(sample);
    std::printf("%14zu %16.1f %11.2f%%   %s\n", sample, cost,
                100.0 * (cost - full_cost) / full_cost, layout.c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
