// Microbenchmarks of the advisor itself: the paper argues that cost
// estimation is cheap enough to evaluate all store combinations ("estimation
// can be done very efficiently, this is a negligible overhead") — this
// measures it.
#include <benchmark/benchmark.h>

#include "core/table_advisor.h"
#include "executor/database.h"
#include "workload/generator.h"

namespace hsdb {
namespace {

struct Fixture {
  Fixture() {
    spec.name = "t";
    HSDB_CHECK(db.CreateTable("t", spec.MakeSchema(),
                              TableLayout::SingleStore(StoreType::kRow))
                   .ok());
    HSDB_CHECK(PopulateSynthetic(db.catalog().GetTable("t"), spec, 10'000)
                   .ok());
    db.catalog().UpdateAllStatistics();
    WorkloadOptions opts;
    opts.olap_fraction = 0.05;
    SyntheticWorkloadGenerator gen(spec, 10'000, opts);
    workload = ToWeighted(gen.Generate(500));
  }
  Database db;
  SyntheticTableSpec spec;
  std::vector<WeightedQuery> workload;
  CostModel model;
};

Fixture& GetFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_EstimateSingleQuery(benchmark::State& state) {
  Fixture& f = GetFixture();
  WorkloadCostEstimator est(&f.model, &f.db.catalog());
  size_t i = 0;
  for (auto _ : state) {
    double cost = est.QueryCost(
        f.workload[i++ % f.workload.size()].query, [](const std::string&) {
          return LayoutContext::SingleStore(StoreType::kColumn);
        });
    benchmark::DoNotOptimize(cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EstimateSingleQuery);

void BM_EstimateWorkload500(benchmark::State& state) {
  Fixture& f = GetFixture();
  WorkloadCostEstimator est(&f.model, &f.db.catalog());
  for (auto _ : state) {
    double cost =
        est.WorkloadCostSingleStore(f.workload, StoreType::kColumn);
    benchmark::DoNotOptimize(cost);
  }
  state.SetItemsProcessed(state.iterations() * f.workload.size());
}
BENCHMARK(BM_EstimateWorkload500);

void BM_TableAdvisorRecommend(benchmark::State& state) {
  Fixture& f = GetFixture();
  TableAdvisor advisor(&f.model, &f.db.catalog());
  for (auto _ : state) {
    TableAdvisorResult r = advisor.Recommend(f.workload);
    benchmark::DoNotOptimize(r.estimated_cost_ms);
  }
}
BENCHMARK(BM_TableAdvisorRecommend);

void BM_CostModelAggregation(benchmark::State& state) {
  CostModel model;
  std::vector<AggSpec> aggs = {{AggFn::kSum, DataType::kDouble},
                               {AggFn::kAvg, DataType::kInt32}};
  for (auto _ : state) {
    double cost = model.AggregationCost(StoreType::kColumn, aggs, true, true,
                                        1e7, 0.6);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_CostModelAggregation);

}  // namespace
}  // namespace hsdb

BENCHMARK_MAIN();
