// Shared scans: how much does co-running a batch of analytic queries save
// over executing them one at a time? Sixteen single-table aggregations
// with distinct range predicates over a dictionary-encoded column run
// (a) serially through Database::Execute and (b) as one
// BatchExecutor::ExecuteBatch — the serving path's shared-scan group,
// where one MultiFilterRangeSlice decode pass per predicate column fans
// out to all sixteen selection bitmaps.
//
// The predicate column is the int64 primary key: at this row count its
// dictionary is far wider than 16 bits, so the decode goes through the
// SIMD gather kernel — the regime where per-query decode dominates and
// sharing pays the most. Expected shape: batched wall time well under
// serial/3; the paper's shared-scan motivation (many clients, same hot
// table) in one number.
//
// Self-gating: exits nonzero when the measured speedup drops below
// kMinSpeedup — a regression in the shared path (group formation falling
// back to per-statement execution, or the multi-filter kernel losing its
// fan-out advantage) fails CI even before the baseline comparison runs.
//
// --json PATH writes serial/batched wall times and the speedup in
// google-benchmark JSON format for CI's perf gate
// (bench/check_regression.py).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "executor/batch_executor.h"
#include "executor/database.h"
#include "workload/synthetic.h"

namespace hsdb {
namespace {

constexpr int kBatchWidth = 16;
constexpr int kReps = 5;
// The acceptance bar: sharing sixteen scans must beat sixteen serial
// scans by at least this factor.
constexpr double kMinSpeedup = 3.0;

struct Timing {
  std::string name;
  double ms = 0.0;
};

/// Minimal google-benchmark-format JSON (see fig_online_migration.cc).
void WriteJson(const std::string& path, const std::vector<Timing>& timings) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n \"context\": {\"executable\": \"fig_shared_scans\"},\n"
               " \"benchmarks\": [\n");
  for (size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"run_name\": \"%s\", "
                 "\"run_type\": \"iteration\", \"iterations\": 1, "
                 "\"real_time\": %.6f, \"cpu_time\": %.6f, "
                 "\"time_unit\": \"ms\"}%s\n",
                 timings[i].name.c_str(), timings[i].name.c_str(),
                 timings[i].ms, timings[i].ms,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, " ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

/// Sixteen aggregations, each counting a different primary-key range —
/// the decode of the (wide-dictionary) id column is the shared work.
std::vector<Query> MakeBatch(const SyntheticTableSpec& spec, size_t rows) {
  (void)spec;
  std::vector<Query> queries;
  for (int i = 0; i < kBatchWidth; ++i) {
    AggregationQuery agg;
    agg.tables = {"sales"};
    agg.aggregates = {{AggFn::kCount, {}}};
    // Staggered, overlapping windows: distinct predicates, shared column.
    int64_t lo = static_cast<int64_t>(rows) * i / (2 * kBatchWidth);
    int64_t hi = lo + static_cast<int64_t>(rows) / 2;
    agg.predicate = {{{0, 0}, ValueRange::Between(Value(lo), Value(hi))}};
    queries.push_back(Query(agg));
  }
  return queries;
}

int Run(const char* json_path) {
  // >65536 distinct keys: the id dictionary needs >16 bits per code, which
  // is the SIMD gather regime of the multi-filter kernel.
  const size_t rows = bench::ScaledRows(10e6, 200'000);
  bench::PrintBanner(
      "shared scans (serving-side batch execution)",
      "1 column table, " + std::to_string(rows) + " rows, " +
          std::to_string(kBatchWidth) + " range-count queries",
      "batched decode amortizes: >=" + std::to_string(int(kMinSpeedup)) +
          "x over serial one-at-a-time");

  SyntheticTableSpec spec;
  spec.name = "sales";
  spec.num_keyfigures = 2;
  spec.num_filters = 2;
  spec.num_groups = 2;
  Database db;
  if (!db.CreateTable("sales", spec.MakeSchema(),
                      TableLayout::SingleStore(StoreType::kColumn))
           .ok() ||
      !PopulateSynthetic(db.catalog().GetTable("sales"), spec, rows).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  // Pin the dictionary codec everywhere: the predicate column (id) must be
  // dictionary-encoded for the gather path, not left to the advisor.
  std::vector<Encoding> encodings(spec.num_columns(), Encoding::kDictionary);
  if (!db.ApplyLayout("sales", TableLayout::SingleStore(StoreType::kColumn),
                      encodings)
           .ok()) {
    std::fprintf(stderr, "ApplyLayout failed\n");
    return 1;
  }
  db.catalog().UpdateAllStatistics();

  const std::vector<Query> batch = MakeBatch(spec, rows);
  BatchExecutor batcher(&db);

  // Warm-up: fault in the segments, prime both paths once.
  for (const Query& q : batch) (void)db.Execute(q);
  (void)batcher.ExecuteBatch(batch);

  double serial_ms = 1e300;
  double batched_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch sw;
    for (const Query& q : batch) {
      Result<QueryResult> r = db.Execute(q);
      if (!r.ok()) {
        std::fprintf(stderr, "serial execute failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    serial_ms = std::min(serial_ms, sw.ElapsedMs());

    sw.Restart();
    std::vector<Result<QueryResult>> results = batcher.ExecuteBatch(batch);
    batched_ms = std::min(batched_ms, sw.ElapsedMs());
    for (const Result<QueryResult>& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "batched execute failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
  }

  const double speedup = serial_ms / batched_ms;
  bench::PrintRule();
  std::printf("%-28s %10s\n", "path", "wall ms");
  bench::PrintRule();
  std::printf("%-28s %10.3f\n", "serial x16", serial_ms);
  std::printf("%-28s %10.3f\n", "shared batch x16", batched_ms);
  bench::PrintRule();
  std::printf("speedup: %.2fx (gate: >=%.1fx)\n", speedup, kMinSpeedup);

  if (json_path != nullptr) {
    WriteJson(json_path, {{"shared_scans/serial_x16", serial_ms},
                          {"shared_scans/batched_x16", batched_ms}});
  }

  if (speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: shared-scan speedup %.2fx below the %.1fx gate\n",
                 speedup, kMinSpeedup);
    return 1;
  }
  std::printf("OK: shared-scan batch execution amortizes the decode\n");
  return 0;
}

}  // namespace
}  // namespace hsdb

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  return hsdb::Run(json_path);
}
