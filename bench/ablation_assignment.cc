// Ablation: exhaustive vs. hill-climbing assignment search in the table
// advisor — solution quality and advisor runtime as the schema grows.
// (Design-choice validation beyond the paper, which evaluates at most the
// 8-table TPC-H schema where exhaustive search is trivial.)
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/table_advisor.h"
#include "workload/generator.h"

namespace hsdb {
namespace {

int Run() {
  bench::PrintBanner(
      "Ablation: assignment search (exhaustive vs. hill climbing)",
      "k tables with random per-table workloads plus random 2-table joins",
      "hill climbing should match exhaustive quality at a fraction of the "
      "evaluations");

  CostModel model;  // analytic defaults suffice: only the search differs
  std::printf("%8s %14s %14s %12s %12s %10s\n", "tables", "exhaustive(ms)",
              "hillclimb(ms)", "exh. evals", "hc evals", "gap");

  for (size_t k : {2, 4, 8, 12, 16, 20}) {
    Database db;
    Rng rng(k * 17);
    std::vector<SyntheticTableSpec> specs(k);
    std::vector<WeightedQuery> workload;
    for (size_t t = 0; t < k; ++t) {
      specs[t].name = "t" + std::to_string(t);
      specs[t].num_keyfigures = 4;
      specs[t].num_filters = 4;
      specs[t].num_groups = 2;
      HSDB_CHECK(db.CreateTable(specs[t].name, specs[t].MakeSchema(),
                                TableLayout::SingleStore(StoreType::kRow))
                     .ok());
      HSDB_CHECK(
          PopulateSynthetic(db.catalog().GetTable(specs[t].name), specs[t],
                            5000)
              .ok());
      // Random workload flavour per table: OLTP-ish or OLAP-ish.
      WorkloadOptions opts;
      opts.olap_fraction = rng.Chance(0.5) ? 0.02 : 0.3;
      opts.seed = k * 100 + t;
      SyntheticWorkloadGenerator gen(specs[t], 5000, opts);
      for (Query& q : gen.Generate(60)) {
        workload.push_back({std::move(q), 1.0});
      }
    }
    db.catalog().UpdateAllStatistics();
    // Random 2-table join queries to couple assignments.
    for (size_t j = 0; j < k; ++j) {
      size_t a = rng.Index(k);
      size_t b = rng.Index(k);
      if (a == b) continue;
      AggregationQuery q;
      q.tables = {specs[a].name, specs[b].name};
      q.joins = {{0, specs[a].filter(0), 1, 0}};
      q.aggregates = {{AggFn::kSum, {specs[a].keyfigure(0), 0}}};
      workload.push_back({Query(q), 3.0});
    }

    TableAdvisor::Options exh_opts;
    exh_opts.exhaustive_limit = 20;
    TableAdvisor exhaustive(&model, &db.catalog(), exh_opts);
    TableAdvisor::Options hc_opts;
    hc_opts.exhaustive_limit = 0;
    TableAdvisor hillclimb(&model, &db.catalog(), hc_opts);

    Stopwatch sw1;
    TableAdvisorResult e = exhaustive.Recommend(workload);
    double exh_ms = sw1.ElapsedMs();
    Stopwatch sw2;
    TableAdvisorResult h = hillclimb.Recommend(workload);
    double hc_ms = sw2.ElapsedMs();
    double gap = (h.estimated_cost_ms - e.estimated_cost_ms) /
                 e.estimated_cost_ms;
    std::printf("%8zu %14.1f %14.1f %12zu %12zu %9.2f%%\n", k, exh_ms, hc_ms,
                e.evaluated_assignments, h.evaluated_assignments,
                100.0 * gap);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
