// Figure 9(a)/(b): benefit of vertical partitioning on workload runtime.
// Paper setup:
//  (a) OLAP-shaped table: 10 keyfigures, 8 group-by attributes, 2 OLTP
//      attributes;
//  (b) OLTP-shaped table: 18 OLTP attributes, 1 keyfigure, 1 group-by.
// Workloads sweep the OLAP fraction 0%..2.5%; compare RS-only, CS-only and
// the vertically partitioned layout the advisor recommends. Expected shape:
// the vertical split tracks (and beats) the column store except for pure
// OLTP workloads, where the row store wins.
#include <vector>

#include "bench_util.h"
#include "core/partition_advisor.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace hsdb {
namespace {

void RunSetting(const char* label, SyntheticTableSpec spec,
                const CostModel& model) {
  const size_t rows = bench::ScaledRows(10e6);
  const size_t num_queries = bench::ScaledQueries(500, 400);

  // The OLTP side updates the table's filter attributes; the advisor should
  // put exactly those into the row-store piece. The OLAP side aggregates
  // keyfigures grouped by the group-by attributes and does NOT filter on the
  // OLTP attributes — the paper's point is that the workloads "fit the table
  // structure", i.e. OLAP stays inside the column piece.
  WorkloadOptions opts;
  opts.olap_fraction = 0.01;
  opts.filter_probability = 0.0;
  opts.group_by_probability = 0.7;
  opts.update_columns = spec.num_filters;  // updates touch all OLTP attrs
  opts.insert_weight = 0.0;
  opts.update_weight = 0.6;
  opts.point_select_weight = 0.4;
  opts.seed = 99;

  // Derive the vertical layout from the advisor once.
  TableLayout vertical;
  {
    Database db;
    HSDB_CHECK(db.CreateTable("t", spec.MakeSchema(),
                              TableLayout::SingleStore(StoreType::kColumn))
                   .ok());
    HSDB_CHECK(
        PopulateSynthetic(db.catalog().GetTable("t"), spec, rows).ok());
    db.catalog().UpdateAllStatistics();
    SyntheticWorkloadGenerator gen(spec, rows, opts);
    std::vector<Query> workload = gen.Generate(num_queries);
    WorkloadStatistics stats;
    for (const Query& q : workload) stats.Record(q, db.catalog());
    PartitionAdvisor advisor(&model, &db.catalog());
    PartitionAdvisorResult rec = advisor.Recommend(
        ToWeighted(workload), stats, {{"t", StoreType::kColumn}});
    vertical = rec.layouts.at("t").layout;
    // Evaluate the vertical scheme in isolation (the paper's Fig. 9 focuses
    // on vertical partitioning only).
    vertical.horizontal.reset();
    if (!vertical.vertical.has_value()) {
      // The advisor may prefer an unpartitioned layout at this mix; Fig. 9
      // studies the vertical scheme itself, so fall back to the heuristic
      // split (OLTP attributes -> row store) explicitly.
      VerticalSpec spec_v;
      for (size_t i = 0; i < spec.num_filters; ++i) {
        spec_v.row_store_columns.push_back(spec.filter(i));
      }
      vertical.base_store = StoreType::kColumn;
      vertical.vertical = spec_v;
    }
    std::printf("[%s] advisor layout: %s\n", label,
                vertical.ToString().c_str());
  }

  std::printf("[%s] rows = %zu, queries = %zu\n", label, rows, num_queries);
  std::printf("%14s %12s %12s %16s\n", "OLAP fraction", "RS-only (s)",
              "CS-only (s)", "partitioned (s)");
  for (double frac : {0.0, 0.00625, 0.0125, 0.01875, 0.025}) {
    WorkloadOptions sweep = opts;
    sweep.olap_fraction = frac;
    sweep.seed = 4242;  // one seed: fractions differ only by the OLAP share
    double runtime[3];
    TableLayout layouts[3] = {TableLayout::SingleStore(StoreType::kRow),
                              TableLayout::SingleStore(StoreType::kColumn),
                              vertical};
    for (int i = 0; i < 3; ++i) {
      Database db;
      HSDB_CHECK(db.CreateTable("t", spec.MakeSchema(), layouts[i]).ok());
      HSDB_CHECK(
          PopulateSynthetic(db.catalog().GetTable("t"), spec, rows).ok());
      db.catalog().UpdateAllStatistics();
      SyntheticWorkloadGenerator gen(spec, rows, sweep);
      WorkloadRunResult run = RunWorkload(db, gen.Generate(num_queries));
      HSDB_CHECK(run.failed == 0);
      runtime[i] = run.total_ms;
    }
    std::printf("%13.3f%% %12.3f %12.3f %16.3f\n", frac * 100,
                runtime[0] / 1000.0, runtime[1] / 1000.0,
                runtime[2] / 1000.0);
    std::fflush(stdout);
  }
  bench::PrintRule();
}

int Run() {
  bench::PrintBanner(
      "Figure 9(a)+(b): benefit of vertical partitioning",
      "(a) OLAP-shaped table (10 keyfigures, 8 group-bys, 2 OLTP attrs); "
      "(b) OLTP-shaped table (18 OLTP attrs, 1 keyfigure, 1 group-by); "
      "OLAP fraction 0%..2.5%",
      "vertical split tracks/beats CS-only except at 0% OLAP where RS-only "
      "wins");

  CostModel model(bench::CalibratedParams());

  SyntheticTableSpec olap_spec;  // Fig. 9(a)
  olap_spec.name = "t";
  olap_spec.num_keyfigures = 10;
  olap_spec.num_filters = 2;  // the 2 selection/update attributes
  olap_spec.num_groups = 8;
  RunSetting("9a OLAP setting", olap_spec, model);

  SyntheticTableSpec oltp_spec;  // Fig. 9(b)
  oltp_spec.name = "t";
  oltp_spec.num_keyfigures = 1;
  oltp_spec.num_filters = 18;  // the 18 selection/update attributes
  oltp_spec.num_groups = 1;
  RunSetting("9b OLTP setting", oltp_spec, model);
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
