// Microbenchmarks (google-benchmark) of the compressed column-store
// subsystem: per-codec sequential decode throughput, predicate scans on
// encoded data vs. the raw baseline, and end-to-end ColumnTable aggregation
// with adaptive codecs vs. uncompressed segments. Each encoded benchmark
// reports the codec's compression ratio as a counter. Run in Release mode.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/bitpack.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "executor/database.h"
#include "storage/column_table.h"
#include "storage/compression/encoded_segment.h"
#include "storage/compression/simd/bitunpack.h"
#include "workload/synthetic.h"

namespace hsdb {
namespace {

using compression::BoundsPred;
using compression::EncodedSegment;
using compression::simd::ScopedSimdLevel;
using compression::simd::SimdLevel;

constexpr size_t kRows = 1 << 20;
constexpr int64_t kDistinct = 64;

/// Low-cardinality run-structured column: the classic sorted-fact-table
/// shape (dates, status codes) every codec should handle well.
const std::vector<int64_t>& RunStructuredColumn() {
  static const std::vector<int64_t>* values = [] {
    auto* v = new std::vector<int64_t>(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      (*v)[i] = static_cast<int64_t>(i / (kRows / kDistinct)) * 97;
    }
    return v;
  }();
  return *values;
}

/// Low-cardinality shuffled column: no run structure, dictionary territory.
const std::vector<int64_t>& ShuffledColumn() {
  static const std::vector<int64_t>* values = [] {
    auto* v = new std::vector<int64_t>(kRows);
    Rng rng(42);
    for (size_t i = 0; i < kRows; ++i) {
      (*v)[i] = rng.UniformInt(0, kDistinct - 1) * 97;
    }
    return v;
  }();
  return *values;
}

void SetRatio(benchmark::State& state, const EncodedSegment<int64_t>& seg) {
  state.counters["compression_ratio"] =
      static_cast<double>(seg.payload_bytes()) /
      static_cast<double>(seg.plain_bytes());
}

// ---- Sequential decode (aggregation scan shape) ----------------------------

void BM_SegmentScan(benchmark::State& state) {
  auto encoding = static_cast<Encoding>(state.range(0));
  auto seg = EncodedSegment<int64_t>::Encode(RunStructuredColumn(), encoding);
  for (auto _ : state) {
    int64_t sum = 0;
    seg.ForEach([&](size_t, int64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  SetRatio(state, seg);
}
BENCHMARK(BM_SegmentScan)->DenseRange(0, kNumEncodings - 1)
    ->ArgName("encoding");

void BM_SegmentScanShuffled(benchmark::State& state) {
  auto encoding = static_cast<Encoding>(state.range(0));
  auto seg = EncodedSegment<int64_t>::Encode(ShuffledColumn(), encoding);
  for (auto _ : state) {
    int64_t sum = 0;
    seg.ForEach([&](size_t, int64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  SetRatio(state, seg);
}
BENCHMARK(BM_SegmentScanShuffled)->DenseRange(0, kNumEncodings - 1)
    ->ArgName("encoding");

// ---- Predicate scans on encoded data ---------------------------------------
// The acceptance scenario: a low-cardinality equality predicate evaluated
// on the encoded segment (dictionary id interval / RLE run skipping) vs.
// decoding every raw value.

void BM_SegmentFilter(benchmark::State& state) {
  auto encoding = static_cast<Encoding>(state.range(0));
  auto seg = EncodedSegment<int64_t>::Encode(RunStructuredColumn(), encoding);
  BoundsPred<int64_t> pred;
  pred.has_lo = pred.has_hi = true;
  pred.lo = pred.hi = 97.0 * (kDistinct / 2);  // one of 64 values
  Bitmap all(kRows, true);
  for (auto _ : state) {
    Bitmap bm = all;
    seg.FilterRange(pred, &bm);
    benchmark::DoNotOptimize(bm.Count());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  SetRatio(state, seg);
}
BENCHMARK(BM_SegmentFilter)->DenseRange(0, kNumEncodings - 1)
    ->ArgName("encoding");

void BM_SegmentFilterShuffled(benchmark::State& state) {
  auto encoding = static_cast<Encoding>(state.range(0));
  auto seg = EncodedSegment<int64_t>::Encode(ShuffledColumn(), encoding);
  BoundsPred<int64_t> pred;
  pred.has_lo = pred.has_hi = true;
  pred.lo = pred.hi = 97.0 * (kDistinct / 2);
  Bitmap all(kRows, true);
  for (auto _ : state) {
    Bitmap bm = all;
    seg.FilterRange(pred, &bm);
    benchmark::DoNotOptimize(bm.Count());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  SetRatio(state, seg);
}
BENCHMARK(BM_SegmentFilterShuffled)->DenseRange(0, kNumEncodings - 1)
    ->ArgName("encoding");

// ---- Bit-packed decode kernels (packed-width-parameterized) ----------------
// The hot loop of every compressed scan: bulk bit-unpacking at each
// representative packed width, with the active SIMD tier vs. the forced
// scalar fallback (arg "scalar"=1). The SIMD rows must stay well ahead of
// their scalar twins — the CI perf gate normalizes by the fleet median, so
// a rotted kernel shows up as a relative regression of the SIMD rows.

/// Packed vector of kRows random width-bit values (fixed seed).
BitPackedVector PackedColumn(uint32_t width) {
  Rng rng(width * 7919 + 20260731);
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  BitPackedVector packed(width);
  packed.Reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) packed.Append(rng.Next() & mask);
  return packed;
}

SimdLevel BenchLevel(const benchmark::State& state) {
  return state.range(1) != 0 ? SimdLevel::kScalar
                             : compression::simd::DetectedLevel();
}

void BM_BitUnpack(benchmark::State& state) {
  const auto width = static_cast<uint32_t>(state.range(0));
  ScopedSimdLevel guard(BenchLevel(state));
  BitPackedVector packed = PackedColumn(width);
  std::vector<uint64_t> out(kRows);
  for (auto _ : state) {
    compression::simd::UnpackBits(packed.words(), 0, kRows, width,
                                  out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_BitUnpack)
    ->ArgsProduct({{8, 12, 16, 24, 32}, {0, 1}})
    ->ArgNames({"width", "scalar"});

void BM_DictDecode(benchmark::State& state) {
  const auto width = static_cast<uint32_t>(state.range(0));
  ScopedSimdLevel guard(BenchLevel(state));
  BitPackedVector packed = PackedColumn(width);
  Rng rng(width);
  std::vector<int64_t> dict(size_t{1} << width);
  for (int64_t& d : dict) d = static_cast<int64_t>(rng.Next());
  std::vector<int64_t> out(kRows);
  for (auto _ : state) {
    compression::simd::UnpackDict64(packed.words(), 0, kRows, width,
                                    dict.data(), out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_DictDecode)
    ->ArgsProduct({{8, 12, 16}, {0, 1}})
    ->ArgNames({"width", "scalar"});

void BM_ForReconstruct(benchmark::State& state) {
  const auto width = static_cast<uint32_t>(state.range(0));
  ScopedSimdLevel guard(BenchLevel(state));
  BitPackedVector packed = PackedColumn(width);
  std::vector<int64_t> out(kRows);
  for (auto _ : state) {
    compression::simd::UnpackForDeltas(packed.words(), 0, kRows, width,
                                       -123456789, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ForReconstruct)
    ->ArgsProduct({{8, 12, 16, 24, 32}, {0, 1}})
    ->ArgNames({"width", "scalar"});

void BM_PackedFilter(benchmark::State& state) {
  const auto width = static_cast<uint32_t>(state.range(0));
  ScopedSimdLevel guard(BenchLevel(state));
  BitPackedVector packed = PackedColumn(width);
  // Middle band, ~50% selectivity: neither branch dominates.
  const uint64_t top =
      width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  const uint64_t lo = top / 4;
  const uint64_t hi = 3 * (top / 4);
  Bitmap bm(kRows, true);
  for (auto _ : state) {
    // Only the kernel is timed: refilling the bitmap (the filter narrows
    // it, and a pre-narrowed input would let the skip-zero-words path
    // cheat) happens outside the measured region.
    compression::simd::FilterPackedRange(packed.words(), kRows, width, lo,
                                         hi, bm.mutable_words());
    benchmark::DoNotOptimize(bm.words());
    state.PauseTiming();
    bm.Resize(kRows, true);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_PackedFilter)
    ->ArgsProduct({{8, 12, 16, 24, 32}, {0, 1}})
    ->ArgNames({"width", "scalar"});

// ---- End-to-end ColumnTable scan -------------------------------------------

std::unique_ptr<ColumnTable> MakeTable(bool adaptive) {
  ColumnTable::Options opts;
  opts.auto_merge = false;
  if (adaptive) {
    opts.encoding.adaptive = true;
  } else {
    opts.encoding.force = Encoding::kRaw;
  }
  auto t = ColumnTable::Create(
      Schema::CreateOrDie({{"id", DataType::kInt64},
                           {"bucket", DataType::kInt64},
                           {"value", DataType::kDouble}},
                          {0}),
      opts);
  const std::vector<int64_t>& buckets = RunStructuredColumn();
  constexpr size_t kTableRows = 200'000;
  for (size_t i = 0; i < kTableRows; ++i) {
    HSDB_CHECK(t->Insert({static_cast<int64_t>(i), buckets[i],
                          static_cast<double>(i % 97)})
                   .ok());
  }
  t->MergeDelta();
  return t;
}

void BM_ColumnTableFilter(benchmark::State& state) {
  auto t = MakeTable(state.range(0) != 0);
  ValueRange range = ValueRange::Eq(Value(int64_t{97 * (kDistinct / 2)}));
  for (auto _ : state) {
    Bitmap bm = t->live_bitmap();
    t->FilterRange(1, range, &bm);
    benchmark::DoNotOptimize(bm.Count());
  }
  state.SetItemsProcessed(state.iterations() * t->live_count());
  state.counters["compression_ratio"] = t->CompressionRate(1);
}
BENCHMARK(BM_ColumnTableFilter)->Arg(0)->Arg(1)->ArgName("adaptive");

void BM_ColumnTableAggregate(benchmark::State& state) {
  auto t = MakeTable(state.range(0) != 0);
  for (auto _ : state) {
    double sum = 0;
    t->ForEachNumeric(1, nullptr, [&](RowId, double v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * t->live_count());
  state.counters["compression_ratio"] = t->CompressionRate(1);
}
BENCHMARK(BM_ColumnTableAggregate)->Arg(0)->Arg(1)->ArgName("adaptive");

// ---- Morsel-parallel scans -------------------------------------------------
// Thread-count-parameterized twins of the scan shapes above: the same work
// fanned over a ThreadPool in 16384-row morsels, at degree of parallelism
// 1 (serial code path), 2 and 4. On a multi-core box the 4-thread rows
// should sit near 2.5x+ over their threads:1 twins; on a single-core
// runner they degenerate gracefully (the CI gate normalizes by the fleet
// median, so only a *relative* rot of the parallel rows trips it).

constexpr size_t kBenchMorselRows = 16384;  // mirrors the executor's morsel
constexpr size_t kParallelBenchRows = 1 << 18;

void BM_ParallelScan(benchmark::State& state) {
  const int dop = static_cast<int>(state.range(0));
  static telemetry::MetricsRegistry registry;
  // One database per thread count, built once: population dwarfs the scan.
  static std::unique_ptr<Database> dbs[5];
  if (!dbs[dop]) {
    Database::Options options;
    options.num_threads = dop;
    options.metrics = &registry;
    dbs[dop] = std::make_unique<Database>(options);
    SyntheticTableSpec spec;
    spec.name = "bench";
    HSDB_CHECK(dbs[dop]
                   ->CreateTable(spec.name, spec.MakeSchema(),
                                 TableLayout::SingleStore(StoreType::kColumn))
                   .ok());
    HSDB_CHECK(PopulateSynthetic(dbs[dop]->catalog().GetTable(spec.name),
                                 spec, kParallelBenchRows)
                   .ok());
  }
  Database& db = *dbs[dop];
  AggregationQuery agg;
  agg.tables = {"bench"};
  AggregateExpr sum;
  sum.fn = AggFn::kSum;
  sum.column = {SyntheticTableSpec{}.keyfigure(0), 0};
  agg.aggregates = {sum};
  SyntheticTableSpec spec;
  agg.predicate = {{{spec.filter(0), 0},
                    ValueRange::Between(Value(int32_t{0}),
                                        Value(int32_t{800}))}};
  const Query query(agg);
  for (auto _ : state) {
    Result<QueryResult> result = db.Execute(query);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kParallelBenchRows);
}
BENCHMARK(BM_ParallelScan)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads");

void BM_ParallelPackedFilter(benchmark::State& state) {
  const int dop = static_cast<int>(state.range(0));
  auto seg = EncodedSegment<int64_t>::Encode(ShuffledColumn(),
                                             Encoding::kFrameOfReference);
  BoundsPred<int64_t> pred;
  pred.has_lo = pred.has_hi = true;
  pred.lo = 0.0;
  pred.hi = 97.0 * (kDistinct / 2);  // ~50% selectivity
  ThreadPool pool(static_cast<size_t>(dop - 1));
  const size_t morsels = (kRows + kBenchMorselRows - 1) / kBenchMorselRows;
  Bitmap bm(kRows, true);
  for (auto _ : state) {
    // Morsel begins are multiples of 16384 (64-aligned), so each morsel
    // writes disjoint words of the shared bitmap — same argument as the
    // executor's parallel scan.
    pool.ParallelFor(morsels, [&](size_t m) {
      const size_t begin = m * kBenchMorselRows;
      const size_t end = std::min(begin + kBenchMorselRows, kRows);
      seg.FilterRangeSlice(pred, &bm, begin, end);
    });
    benchmark::DoNotOptimize(bm.words());
    state.PauseTiming();
    bm.Resize(kRows, true);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  SetRatio(state, seg);
}
BENCHMARK(BM_ParallelPackedFilter)->Arg(1)->Arg(2)->Arg(4)
    ->ArgName("threads");

// ---- Telemetry overhead ----------------------------------------------------
// The observability layer's acceptance gate: per-query telemetry (trace
// spans, metric updates, latency histogram) must stay under 2% on a
// representative aggregation scan (bench/check_regression.py asserts the
// within-run ratios). Three modes:
//   telemetry:0  raw Executor::Execute — no Database-level accounting at
//                all, the stand-in for an HSDB_TELEMETRY=OFF build
//   telemetry:1  Database::Execute with the registry disabled (runtime off)
//   telemetry:2  Database::Execute with telemetry enabled (traced path)

constexpr size_t kTelemetryBenchRows = 1 << 18;

Database& TelemetryBenchDb() {
  static Database* db = [] {
    static telemetry::MetricsRegistry registry;
    auto* d = new Database(&registry);
    SyntheticTableSpec spec;
    spec.name = "bench";
    HSDB_CHECK(d->CreateTable(spec.name, spec.MakeSchema(),
                              TableLayout::SingleStore(StoreType::kColumn))
                   .ok());
    HSDB_CHECK(PopulateSynthetic(d->catalog().GetTable(spec.name), spec,
                                 kTelemetryBenchRows)
                   .ok());
    HSDB_CHECK(d->catalog().UpdateStatistics(spec.name).ok());
    return d;
  }();
  return *db;
}

void BM_TelemetryOverhead(benchmark::State& state) {
  Database& db = TelemetryBenchDb();
  Executor raw(&db.catalog());
  AggregationQuery agg;
  agg.tables = {"bench"};
  AggregateExpr sum;
  sum.fn = AggFn::kSum;
  sum.column = {SyntheticTableSpec{}.keyfigure(0), 0};
  agg.aggregates = {sum};
  const Query query(agg);

  const int mode = static_cast<int>(state.range(0));
  db.metrics().set_enabled(mode == 2);
  for (auto _ : state) {
    Result<QueryResult> result =
        mode == 0 ? raw.Execute(query) : db.Execute(query);
    benchmark::DoNotOptimize(result);
  }
  db.metrics().set_enabled(true);
  state.SetItemsProcessed(state.iterations() * kTelemetryBenchRows);
}
BENCHMARK(BM_TelemetryOverhead)->DenseRange(0, 2)->ArgName("telemetry");

}  // namespace
}  // namespace hsdb

BENCHMARK_MAIN();
