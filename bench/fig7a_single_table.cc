// Figure 7(a): recommendation quality, single-table workloads.
// Paper setup: the 30-attribute table at 10M tuples; 500-query workloads
// with OLAP fractions 0%..5%; compare RS-only, CS-only and the store the
// advisor recommends. Expected shape: RS cheaper at low OLAP fractions, CS
// beyond a crossover around 2.5%, advisor tracking the minimum.
#include <vector>

#include "bench_util.h"
#include "core/table_advisor.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace hsdb {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure 7(a): recommendation quality, single table",
      "30-attribute table, 10M tuples (scaled), 500-query workloads, OLAP "
      "fraction 0%..5%",
      "RS wins at low OLAP fractions, CS beyond ~2.5%; advisor follows the "
      "minimum");

  CostModel model(bench::CalibratedParams());
  SyntheticTableSpec spec;
  spec.name = "t";
  const size_t rows = bench::ScaledRows(10e6);
  const size_t num_queries = bench::ScaledQueries(500, 200);
  std::printf("rows = %zu, queries per workload = %zu\n", rows, num_queries);

  std::printf("%14s %12s %12s %10s %14s %10s\n", "OLAP fraction",
              "RS-only (s)", "CS-only (s)", "advisor", "advisor (s)",
              "optimal?");

  int advisor_optimal = 0;
  int sweeps = 0;
  for (double frac : {0.0, 0.0125, 0.025, 0.0375, 0.05}) {
    WorkloadOptions opts;
    opts.olap_fraction = frac;
    opts.seed = 1234;

    double measured[2];
    StoreType recommended = StoreType::kRow;
    for (StoreType store : {StoreType::kRow, StoreType::kColumn}) {
      Database db;
      HSDB_CHECK(db.CreateTable("t", spec.MakeSchema(),
                                TableLayout::SingleStore(store))
                     .ok());
      HSDB_CHECK(
          PopulateSynthetic(db.catalog().GetTable("t"), spec, rows).ok());
      db.catalog().UpdateAllStatistics();

      SyntheticWorkloadGenerator gen(spec, rows, opts);
      std::vector<Query> workload = gen.Generate(num_queries);

      if (store == StoreType::kRow) {
        // Ask the advisor once (data characteristics identical either way).
        TableAdvisor advisor(&model, &db.catalog());
        TableAdvisorResult rec = advisor.Recommend(ToWeighted(workload));
        recommended = rec.assignment.at("t");
      }
      WorkloadRunResult run = RunWorkload(db, workload);
      HSDB_CHECK(run.failed == 0);
      measured[static_cast<int>(store)] = run.total_ms;
    }
    double advisor_ms = measured[static_cast<int>(recommended)];
    bool optimal =
        advisor_ms <= std::min(measured[0], measured[1]) + 1e-9;
    advisor_optimal += optimal;
    ++sweeps;
    std::printf("%13.2f%% %12.3f %12.3f %10s %14.3f %10s\n", frac * 100,
                measured[0] / 1000.0, measured[1] / 1000.0,
                std::string(StoreTypeName(recommended)).c_str(),
                advisor_ms / 1000.0, optimal ? "yes" : "no");
    std::fflush(stdout);
  }
  bench::PrintRule();
  std::printf("advisor picked the measured-optimal store in %d/%d settings\n",
              advisor_optimal, sweeps);
  return 0;
}

}  // namespace
}  // namespace hsdb

int main() { return hsdb::Run(); }
